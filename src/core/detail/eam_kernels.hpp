// Internal kernel entry points for EamForceComputer. One translation unit
// per strategy family keeps each parallelization pattern readable on its
// own (and mirrors how the paper presents them).
//
// Contract shared by all kernels (ISSUE 3 fused-pipeline revision):
//  * density kernels fill rho[] (zeroed by the caller);
//  * force kernels fill force[] (zeroed by the caller) and report the pair
//    energy and virial through per-thread partial sums;
//  * half-list kernels visit each pair once and scatter symmetric updates;
//    the RC kernels take a full list and only ever write index i;
//  * `_team` kernels are ORPHANED OpenMP code: every thread of the active
//    parallel region must call them (EamForceComputer::compute opens one
//    region per step and runs density -> embed -> force inside it). Each
//    ends at a barrier, so its outputs are complete when it returns. Called
//    outside a region they degrade gracefully to a team of one.
//
// Per-pair interaction cache: when EamArgs.cache is active, the density
// kernels record each pair's minimum-image geometry and density-spline
// derivative at its CSR slot; the force kernels then reuse those values
// instead of recomputing minimum image + sqrt + spline, and skip the
// cutoff test entirely (r < 0 marks pairs the density phase rejected).
//
// Devirtualized splines: when EamArgs.tables is non-null the inner loops
// evaluate flattened spline coefficients inline (see SplineView) instead of
// going through the EamPotential virtual interface. Analytic potentials
// leave tables null and keep the virtual path.
//
// SoA fast path: when EamArgs.soa is active every kernel swaps its scalar
// CSR loop for the branch-free SIMD tile helpers of eam_soa.hpp (positions
// mirror, padded neighbor tiles, packed splines); only the per-pair
// scatter - under this strategy's protection - stays scalar. The scalar
// loops remain compiled in as the correctness reference (SoA off).
#pragma once

#include <span>
#include <vector>

#include "common/vec3.hpp"
#include "core/detail/eam_soa.hpp"
#include "core/sdc_schedule.hpp"
#include "geom/box.hpp"
#include "neighbor/neighbor_list.hpp"
#include "obs/sweep_profile.hpp"
#include "potential/potential.hpp"

namespace sdcmd {
class LockPool;
class CellTaskSchedule;
class CellTaskRuntime;
}

namespace sdcmd::detail {

/// Profiler phase indices shared by the kernels and EamForceComputer
/// (match the phase_names the computer configures its profiler with).
inline constexpr int kProfPhaseDensity = 0;
inline constexpr int kProfPhaseEmbed = 1;
inline constexpr int kProfPhaseForce = 2;

/// Borrowed SoA storage for the per-pair cache, indexed by CSR slot.
/// Null pointers mean caching is off for this compute() call.
struct PairCacheRefs {
  Vec3* dr = nullptr;      ///< minimum-image x_i - x_j
  double* r = nullptr;     ///< |dr|; < 0 marks a cutoff-rejected pair
  double* dphidr = nullptr;  ///< density-spline derivative at r

  bool active() const { return r != nullptr; }
};

struct EamArgs {
  const Box& box;
  std::span<const Vec3> x;
  const NeighborList& list;
  const EamPotential& pot;
  double cutoff2;          ///< squared potential cutoff (list range is wider)
  bool dynamic_schedule;   ///< omp dynamic chunking in the subdomain loop
  /// Per-thread x per-color span recorder; kernels take the timed code
  /// path only when non-null and enabled (SDC + embed phases).
  obs::SdcSweepProfiler* profiler = nullptr;
  /// Flattened spline tables for inline evaluation; null -> virtual calls.
  const EamSplineTables* tables = nullptr;
  /// Per-pair geometry/spline cache (density writes, force reads).
  PairCacheRefs cache;
  /// SoA fast path (positions mirror + padded tiles + packed splines);
  /// inactive -> the kernels take their scalar CSR loops. When active it
  /// subsumes `cache`: per-pair state lives at padded tile slots instead.
  SoaView soa;
};

struct ForceSums {
  double pair_energy = 0.0;
  double virial = 0.0;
};

/// Minimum-image pair geometry; returns false when beyond the cutoff.
struct PairGeom {
  Vec3 dr;   ///< x_i - x_j (minimum image)
  double r;  ///< |dr|
};

inline bool pair_geometry(const Box& box, const Vec3& xi, const Vec3& xj,
                          double cutoff2, PairGeom& out) {
  out.dr = box.minimum_image(xi, xj);
  const double r2 = norm2(out.dr);
  if (r2 >= cutoff2) return false;
  out.r = std::sqrt(r2);
  return true;
}

// --- devirtualized potential evaluation ------------------------------------

inline void eval_density(const EamArgs& a, double r, double& phi,
                         double& dphidr) {
  if (a.tables != nullptr) {
    a.tables->density.evaluate(r, phi, dphidr);
  } else {
    a.pot.density(r, phi, dphidr);
  }
}

inline void eval_pair(const EamArgs& a, double r, double& v, double& dvdr) {
  if (a.tables != nullptr) {
    a.tables->pair.evaluate(r, v, dvdr);
  } else {
    a.pot.pair(r, v, dvdr);
  }
}

inline void eval_embed(const EamArgs& a, double rho_i, double& f,
                       double& dfdrho) {
  if (a.tables != nullptr) {
    a.tables->embed.evaluate(rho_i, f, dfdrho);
  } else {
    a.pot.embed(rho_i, f, dfdrho);
  }
}

// --- shared per-pair work ---------------------------------------------------

/// Phase-1 pair visit: minimum-image geometry + density spline, recording
/// the pair at its CSR `slot` when the cache is active. Returns false (and
/// stores the rejection sentinel) for pairs beyond the cutoff.
inline bool density_pair(const EamArgs& a, const Vec3& xi, std::uint32_t j,
                         std::size_t slot, double& phi) {
  PairGeom g;
  if (!pair_geometry(a.box, xi, a.x[j], a.cutoff2, g)) {
    if (a.cache.active()) a.cache.r[slot] = -1.0;
    return false;
  }
  double dphidr;
  eval_density(a, g.r, phi, dphidr);
  if (a.cache.active()) {
    a.cache.dr[slot] = g.dr;
    a.cache.r[slot] = g.r;
    a.cache.dphidr[slot] = dphidr;
  }
  return true;
}

/// Phase-3 pair visit: reads geometry and the density derivative back from
/// the cache when active (no minimum image, no sqrt, no cutoff test, no
/// density spline), else recomputes them. Outputs the force on i (`fv`),
/// the pair energy `v`, and the virial contribution `rvir`.
inline bool force_pair(const EamArgs& a, const Vec3& xi, std::uint32_t j,
                       std::size_t slot, double fp_sum, Vec3& fv, double& v,
                       double& rvir) {
  Vec3 dr;
  double r, dphidr;
  if (a.cache.active()) {
    r = a.cache.r[slot];
    if (r < 0.0) return false;  // rejected by the density phase
    dr = a.cache.dr[slot];
    dphidr = a.cache.dphidr[slot];
  } else {
    PairGeom g;
    if (!pair_geometry(a.box, xi, a.x[j], a.cutoff2, g)) return false;
    dr = g.dr;
    r = g.r;
    double phi;
    eval_density(a, r, phi, dphidr);
  }
  double dvdr;
  eval_pair(a, r, v, dvdr);
  // dE/dr_ij = V'(r) + (F'(rho_i) + F'(rho_j)) phi'(r)   [paper eq. (2)]
  const double fpair = -(dvdr + fp_sum * dphidr) / r;
  fv = fpair * dr;
  rvir = fpair * r * r;
  return true;
}

// --- phase 1: electron density --------------------------------------------
void density_serial(const EamArgs& a, std::span<double> rho);
void density_critical_team(const EamArgs& a, std::span<double> rho);
void density_atomic_team(const EamArgs& a, std::span<double> rho);
void density_locks_team(const EamArgs& a, LockPool& locks,
                        std::span<double> rho);
/// `priv` must be pre-sized to >= the team size by the caller; each thread
/// zeroes and scatters into its own replica (NUMA first touch included).
void density_sap_team(const EamArgs& a, std::span<double> rho,
                      std::vector<std::vector<double>>& priv);
void density_rc_team(const EamArgs& a, std::span<double> rho);  // full list
void density_sdc_team(const EamArgs& a, const Partition& part,
                      std::span<double> rho);
/// Cell-task shape: LPT work-stealing over cell blocks, per-block locks
/// taken only on actual conflict, cross-block scatter staged per thread and
/// flushed under the target block's lock (single-lock discipline). `locks`
/// must be sized to the schedule's block count so block -> lock is 1:1.
void density_task_team(const EamArgs& a, const CellTaskSchedule& sched,
                       CellTaskRuntime& rt, LockPool& locks,
                       std::span<double> rho);

// --- phase 2: embedding (strategy-independent) -----------------------------
/// Serial: fills fp[i] = dF/drho(rho_i), returns sum of F(rho_i).
double embed_serial(const EamArgs& a, std::span<const double> rho,
                    std::span<double> fp);
/// Team variant: every thread writes its partial energy to
/// `energy_parts[omp_get_thread_num()]` (assignment, no zeroing needed);
/// the caller sums the slots in thread order after the region for a
/// deterministic total. An enabled profiler records per-thread work/wait
/// spans under kProfPhaseEmbed (color 0: the phase has no color structure).
void embed_team(const EamArgs& a, std::span<const double> rho,
                std::span<double> fp, double* energy_parts);

/// Standalone embedding evaluation through the virtual interface, for
/// callers outside the fused pipeline (cell_direct's O(N^2) reference).
double embed_phase(const EamPotential& pot, std::span<const double> rho,
                   std::span<double> fp, bool parallel);

// --- phase 3: forces --------------------------------------------------------
void force_serial(const EamArgs& a, std::span<const double> fp,
                  std::span<Vec3> force, ForceSums& sums);
// Team kernels write this thread's pair-energy / virial partial sums to
// `energy_parts[tid]` / `virial_parts[tid]` (assignment).
void force_critical_team(const EamArgs& a, std::span<const double> fp,
                         std::span<Vec3> force, double* energy_parts,
                         double* virial_parts);
void force_atomic_team(const EamArgs& a, std::span<const double> fp,
                       std::span<Vec3> force, double* energy_parts,
                       double* virial_parts);
void force_locks_team(const EamArgs& a, LockPool& locks,
                      std::span<const double> fp, std::span<Vec3> force,
                      double* energy_parts, double* virial_parts);
void force_sap_team(const EamArgs& a, std::span<const double> fp,
                    std::span<Vec3> force, double* energy_parts,
                    double* virial_parts,
                    std::vector<std::vector<Vec3>>& priv);
void force_rc_team(const EamArgs& a, std::span<const double> fp,
                   std::span<Vec3> force, double* energy_parts,
                   double* virial_parts);  // full list
void force_sdc_team(const EamArgs& a, const Partition& part,
                    std::span<const double> fp, std::span<Vec3> force,
                    double* energy_parts, double* virial_parts);
void force_task_team(const EamArgs& a, const CellTaskSchedule& sched,
                     CellTaskRuntime& rt, LockPool& locks,
                     std::span<const double> fp, std::span<Vec3> force,
                     double* energy_parts, double* virial_parts);

}  // namespace sdcmd::detail
