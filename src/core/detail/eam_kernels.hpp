// Internal kernel entry points for EamForceComputer. One translation unit
// per strategy family keeps each parallelization pattern readable on its
// own (and mirrors how the paper presents them).
//
// Contract shared by all kernels:
//  * density kernels fill rho[] (zeroed by the caller);
//  * force kernels fill force[] (zeroed by the caller) and return the pair
//    energy and virial through DensityForceSums;
//  * half-list kernels visit each pair once and scatter symmetric updates;
//    the RC kernels take a full list and only ever write index i.
#pragma once

#include <span>
#include <vector>

#include "common/vec3.hpp"
#include "core/sdc_schedule.hpp"
#include "geom/box.hpp"
#include "neighbor/neighbor_list.hpp"
#include "obs/sweep_profile.hpp"
#include "potential/potential.hpp"

namespace sdcmd {
class LockPool;
}

namespace sdcmd::detail {

/// Profiler phase indices shared by the kernels and EamForceComputer
/// (match the phase_names the computer configures its profiler with).
inline constexpr int kProfPhaseDensity = 0;
inline constexpr int kProfPhaseEmbed = 1;
inline constexpr int kProfPhaseForce = 2;

struct EamArgs {
  const Box& box;
  std::span<const Vec3> x;
  const NeighborList& list;
  const EamPotential& pot;
  double cutoff2;          ///< squared potential cutoff (list range is wider)
  bool dynamic_schedule;   ///< omp dynamic chunking in the subdomain loop
  /// Per-thread x per-color span recorder; kernels take the timed code
  /// path only when non-null and enabled (SDC + embed phases).
  obs::SdcSweepProfiler* profiler = nullptr;
};

struct ForceSums {
  double pair_energy = 0.0;
  double virial = 0.0;
};

/// Minimum-image pair geometry; returns false when beyond the cutoff.
struct PairGeom {
  Vec3 dr;   ///< x_i - x_j (minimum image)
  double r;  ///< |dr|
};

inline bool pair_geometry(const Box& box, const Vec3& xi, const Vec3& xj,
                          double cutoff2, PairGeom& out) {
  out.dr = box.minimum_image(xi, xj);
  const double r2 = norm2(out.dr);
  if (r2 >= cutoff2) return false;
  out.r = std::sqrt(r2);
  return true;
}

// --- phase 1: electron density --------------------------------------------
void density_serial(const EamArgs& a, std::span<double> rho);
void density_critical(const EamArgs& a, std::span<double> rho);
void density_atomic(const EamArgs& a, std::span<double> rho);
void density_locks(const EamArgs& a, LockPool& locks, std::span<double> rho);
void density_sap(const EamArgs& a, std::span<double> rho,
                 std::vector<std::vector<double>>& priv);
void density_rc(const EamArgs& a, std::span<double> rho);  // full list
void density_sdc(const EamArgs& a, const Partition& part,
                 std::span<double> rho);

// --- phase 2: embedding (strategy-independent) -----------------------------
/// Fills fp[i] = dF/drho(rho_i); returns sum of F(rho_i). Runs with a plain
/// `#pragma omp parallel for` when `parallel` (the paper parallelizes this
/// phase with a single directive: no data dependences). An enabled
/// `profiler` records per-thread work/wait spans under kProfPhaseEmbed
/// (color 0: the phase has no color structure).
double embed_phase(const EamPotential& pot, std::span<const double> rho,
                   std::span<double> fp, bool parallel,
                   obs::SdcSweepProfiler* profiler = nullptr);

// --- phase 3: forces --------------------------------------------------------
void force_serial(const EamArgs& a, std::span<const double> fp,
                  std::span<Vec3> force, ForceSums& sums);
void force_critical(const EamArgs& a, std::span<const double> fp,
                    std::span<Vec3> force, ForceSums& sums);
void force_atomic(const EamArgs& a, std::span<const double> fp,
                  std::span<Vec3> force, ForceSums& sums);
void force_locks(const EamArgs& a, LockPool& locks,
                 std::span<const double> fp, std::span<Vec3> force,
                 ForceSums& sums);
void force_sap(const EamArgs& a, std::span<const double> fp,
               std::span<Vec3> force, ForceSums& sums,
               std::vector<std::vector<Vec3>>& priv);
void force_rc(const EamArgs& a, std::span<const double> fp,
              std::span<Vec3> force, ForceSums& sums);  // full list
void force_sdc(const EamArgs& a, const Partition& part,
               std::span<const double> fp, std::span<Vec3> force,
               ForceSums& sums);

}  // namespace sdcmd::detail
