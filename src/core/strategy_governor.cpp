#include "core/strategy_governor.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace sdcmd {

namespace {

/// Bytes one ArrayPrivatization replica set costs per thread: a rho copy
/// and a force copy per atom (see EamForceComputer::SapWorkspace).
std::size_t sap_bytes(int threads, std::size_t atom_count) {
  return static_cast<std::size_t>(threads) * atom_count *
         (sizeof(double) + sizeof(Vec3));
}

}  // namespace

StrategyGovernor::StrategyGovernor(GovernorConfig config)
    : config_(config) {
  SDCMD_REQUIRE(ladder_index(config_.preferred) >= 0,
                "governor preferred strategy must be on the ladder "
                "(sdc, celltask, sap, locks, atomic or serial), got " +
                    to_string(config_.preferred));
  SDCMD_REQUIRE(config_.preferred != ReductionStrategy::CellTask ||
                    config_.enable_celltask,
                "governor preferred strategy is celltask but the celltask "
                "rung is disabled");
  SDCMD_REQUIRE(config_.promote_streak >= 1,
                "promotion streak must be >= 1");
  SDCMD_REQUIRE(config_.backoff_factor >= 1, "backoff factor must be >= 1");
  SDCMD_REQUIRE(config_.max_backoff >= 1, "backoff cap must be >= 1");
  SDCMD_REQUIRE(config_.shadow_check_every >= 0,
                "shadow-check cadence must be non-negative");
  SDCMD_REQUIRE(config_.shadow_tolerance > 0.0,
                "shadow tolerance must be positive");
  state_.active = config_.preferred;
}

int StrategyGovernor::ladder_index(ReductionStrategy s) {
  for (int i = 0; i < static_cast<int>(std::size(kLadder)); ++i) {
    if (kLadder[i] == s) return i;
  }
  return -1;
}

int StrategyGovernor::strategy_code(ReductionStrategy s) {
  switch (s) {
    case ReductionStrategy::Serial: return 0;
    case ReductionStrategy::Critical: return 1;
    case ReductionStrategy::Atomic: return 2;
    case ReductionStrategy::LockStriped: return 3;
    case ReductionStrategy::ArrayPrivatization: return 4;
    case ReductionStrategy::RedundantComputation: return 5;
    case ReductionStrategy::Sdc: return 6;
    case ReductionStrategy::CellTask: return 7;
  }
  return -1;
}

std::optional<ReductionStrategy> StrategyGovernor::try_strategy_from_code(
    int code) {
  for (const ReductionStrategy s : kAllStrategies) {
    if (strategy_code(s) == code) return s;
  }
  return std::nullopt;
}

ReductionStrategy StrategyGovernor::strategy_from_code(int code) {
  const std::optional<ReductionStrategy> s = try_strategy_from_code(code);
  if (!s) {
    throw PreconditionError("unknown reduction-strategy code " +
                            std::to_string(code));
  }
  return *s;
}

int StrategyGovernor::required_streak() const {
  return config_.promote_streak * state_.backoff;
}

bool StrategyGovernor::rung_feasible(ReductionStrategy rung, const Box& box,
                                     double interaction_range, int threads,
                                     std::size_t atom_count) const {
  switch (rung) {
    case ReductionStrategy::Sdc:
      return SdcSchedule::feasible(box, interaction_range, config_.sdc);
    case ReductionStrategy::CellTask:
      return config_.enable_celltask &&
             CellTaskSchedule::feasible(box, interaction_range);
    case ReductionStrategy::ArrayPrivatization:
      return config_.max_private_bytes == 0 ||
             sap_bytes(threads, atom_count) <= config_.max_private_bytes;
    case ReductionStrategy::LockStriped:
    case ReductionStrategy::Atomic:
    case ReductionStrategy::Serial:
      return true;
    default:
      return false;  // not a ladder rung
  }
}

ReductionStrategy StrategyGovernor::best_feasible(
    const Box& box, double interaction_range, int threads,
    std::size_t atom_count) const {
  bool at_or_below_preferred = false;
  for (ReductionStrategy rung : kLadder) {
    if (rung == config_.preferred) at_or_below_preferred = true;
    if (!at_or_below_preferred) continue;
    if (rung_feasible(rung, box, interaction_range, threads, atom_count)) {
      return rung;
    }
  }
  return ReductionStrategy::Serial;  // unreachable: Serial is always feasible
}

GovernorDecision StrategyGovernor::demote_to(ReductionStrategy rung,
                                             std::string reason) {
  state_.active = rung;
  ++state_.demotions;
  state_.feasible_streak = 0;
  state_.backoff =
      std::min(state_.backoff * config_.backoff_factor, config_.max_backoff);
  GovernorDecision decision;
  decision.strategy = rung;
  decision.event = GovernorEvent::Demotion;
  decision.reason = std::move(reason);
  return decision;
}

void StrategyGovernor::restore_state(const GovernorState& state) {
  SDCMD_REQUIRE(ladder_index(state.active) >= 0,
                "restored governor strategy must be on the ladder");
  state_ = state;
  state_.backoff = std::clamp(state_.backoff, 1, config_.max_backoff);
  restored_ = true;
}

GovernorDecision StrategyGovernor::setup(const Box& box,
                                         double interaction_range,
                                         int threads,
                                         std::size_t atom_count) {
  if (restored_) {
    // Resume where the previous run left off: keep the restored rung when
    // it is still feasible (promotion stays hysteretic across restarts);
    // demote when the restored box no longer supports it.
    restored_ = false;
    if (rung_feasible(state_.active, box, interaction_range, threads,
                      atom_count)) {
      GovernorDecision decision;
      decision.strategy = state_.active;
      decision.reason = "restored " + to_string(state_.active);
      return decision;
    }
    const ReductionStrategy best =
        best_feasible(box, interaction_range, threads, atom_count);
    return demote_to(best, "restored rung " + to_string(state_.active) +
                               " infeasible for the restored box; demoting "
                               "to " + to_string(best));
  }
  state_.active = best_feasible(box, interaction_range, threads, atom_count);
  GovernorDecision decision;
  decision.strategy = state_.active;
  decision.reason = "selected " + to_string(state_.active) +
                    (state_.active == config_.preferred
                         ? ""
                         : " (" + to_string(config_.preferred) +
                               " infeasible at setup)");
  return decision;
}

GovernorDecision StrategyGovernor::on_box_change(const Box& box,
                                                 double interaction_range,
                                                 int threads,
                                                 std::size_t atom_count) {
  GovernorDecision decision;
  decision.strategy = state_.active;
  if (rung_feasible(state_.active, box, interaction_range, threads,
                    atom_count)) {
    return decision;  // still fine; promotion is on_step's job
  }
  const ReductionStrategy best =
      best_feasible(box, interaction_range, threads, atom_count);
  std::ostringstream os;
  os << to_string(state_.active) << " infeasible after box change (box "
     << box.length(0) << " x " << box.length(1) << " x " << box.length(2)
     << ", range " << interaction_range << "); demoting to "
     << to_string(best);
  return demote_to(best, os.str());
}

GovernorDecision StrategyGovernor::on_step(const Box& box,
                                           double interaction_range,
                                           int threads,
                                           std::size_t atom_count) {
  GovernorDecision decision;
  decision.strategy = state_.active;
  if (state_.active == config_.preferred) {
    state_.feasible_streak = 0;
    return decision;
  }
  // Defensive re-validation: box changes normally arrive via
  // on_box_change, but a caller mutating the box behind our back should
  // still demote rather than race.
  if (!rung_feasible(state_.active, box, interaction_range, threads,
                     atom_count)) {
    const ReductionStrategy best =
        best_feasible(box, interaction_range, threads, atom_count);
    return demote_to(best, to_string(state_.active) +
                               " went infeasible between box changes; "
                               "demoting to " + to_string(best));
  }
  const ReductionStrategy best =
      best_feasible(box, interaction_range, threads, atom_count);
  if (ladder_index(best) >= ladder_index(state_.active)) {
    // Nothing better is feasible; a recovery streak (if any) is broken.
    state_.feasible_streak = 0;
    return decision;
  }
  ++state_.feasible_streak;
  if (state_.feasible_streak < required_streak()) return decision;
  const ReductionStrategy from = state_.active;
  state_.active = best;
  ++state_.promotions;
  state_.feasible_streak = 0;
  decision.strategy = best;
  decision.event = GovernorEvent::Promotion;
  decision.reason = to_string(best) + " feasible for " +
                    std::to_string(required_streak()) +
                    " consecutive steps; promoting from " + to_string(from);
  return decision;
}

GovernorDecision StrategyGovernor::on_shadow_mismatch(
    const std::string& detail) {
  ++state_.race_suspects;
  GovernorDecision decision;
  decision.strategy = state_.active;
  if (state_.active == ReductionStrategy::Serial) {
    // The serial reference disagreeing with itself means the mismatch is
    // not a concurrency bug; nothing below Serial to demote to.
    decision.reason = "shadow mismatch on the serial rung: " + detail;
    return decision;
  }
  const int below = ladder_index(state_.active) + 1;
  // Geometry said the rung was fine and the numbers disagree anyway - do
  // not trust the feasibility probe, just step one rung down.
  const ReductionStrategy next =
      below < static_cast<int>(std::size(kLadder))
          ? kLadder[below]
          : ReductionStrategy::Serial;
  return demote_to(next, "shadow validation mismatch on " +
                             to_string(state_.active) + " (" + detail +
                             "); demoting to " + to_string(next));
}

}  // namespace sdcmd
