// Generic colored irregular-reduction engine.
//
// The paper closes by noting SDC solves "a class of short-range force
// calculations problems", not just EAM. This type factors the pattern out
// of MD entirely: any computation of the form
//
//   for each point i:  scatter updates to data of points within `range` of i
//
// can run race-free in parallel by sweeping the SDC colors. Examples:
// smoothed-particle hydrodynamics density sums, contact-force accumulation
// in granular dynamics, or the demo in examples/irregular_reduction.cpp
// (local mass smoothing over a random point cloud).
//
// Contract for the user functor: processing point i may read anything but
// may only WRITE per-point data of points within `interaction_range` of
// point i (at rebuild time). That is precisely the guarantee under which
// same-color subdomains never collide.
#pragma once

#include <omp.h>

#include <cstdint>
#include <memory>
#include <span>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/sdc_schedule.hpp"
#include "obs/sweep_profile.hpp"

namespace sdcmd {

class ColoredScatterEngine {
 public:
  /// Throws InfeasibleError when `box` cannot be decomposed at the
  /// requested dimensionality with subdomain edges >= 2 * range.
  ColoredScatterEngine(const Box& box, double interaction_range,
                       SdcConfig config);

  /// Non-throwing probe: would the constructor succeed? Lets callers (the
  /// StrategyGovernor in particular) poll a changing box without try/catch.
  static bool feasible(const Box& box, double interaction_range,
                       const SdcConfig& config) {
    return SdcSchedule::feasible(box, interaction_range, config);
  }

  /// Re-bin the points (call whenever they move materially).
  void rebuild(std::span<const Vec3> points);

  const SdcSchedule& schedule() const { return *schedule_; }
  int color_count() const { return schedule_->color_count(); }

  /// Attach (or detach, with nullptr) a per-thread x per-color span
  /// profiler. When enabled, for_each_point_colored() shapes it to the
  /// schedule (one phase named "sweep") and records each thread's work and
  /// barrier-wait time per color, exactly like the EAM SDC kernels.
  void set_profiler(obs::SdcSweepProfiler* profiler) {
    profiler_ = profiler;
  }

  /// Invoke `fn(i)` once for every point, colors swept serially with the
  /// points of a color processed in parallel. `fn` must honor the class
  /// contract above.
  template <typename VertexFn>
  void for_each_point_colored(VertexFn&& fn) const {
    SDCMD_REQUIRE(schedule_->built(), "rebuild() has not run yet");
    const Partition& part = schedule_->partition();
    const int colors = part.color_count();
    obs::SdcSweepProfiler* prof =
        (profiler_ != nullptr && profiler_->enabled()) ? profiler_ : nullptr;
    if (prof != nullptr) {
      prof->configure({"sweep"}, colors, omp_get_max_threads());
      prof->begin_step();
    }
#pragma omp parallel
    {
      const int tid = omp_get_thread_num();
      for (int c = 0; c < colors; ++c) {
        const std::size_t begin = part.color_begin(c);
        const std::size_t end = part.color_end(c);
        if (prof != nullptr) {
          obs::SweepSample sample;
          sample.start = wall_time();
#pragma omp for schedule(static) nowait
          for (std::size_t slot = begin; slot < end; ++slot) {
            for (std::uint32_t i : part.atoms_in_slot(slot)) {
              fn(static_cast<std::size_t>(i));
            }
          }
          const double t_work = wall_time();
#pragma omp barrier
          sample.work = t_work - sample.start;
          sample.wait = wall_time() - t_work;
          sample.valid = true;
          prof->record(0, c, tid, sample);
        } else {
#pragma omp for schedule(static)
          for (std::size_t slot = begin; slot < end; ++slot) {
            for (std::uint32_t i : part.atoms_in_slot(slot)) {
              fn(static_cast<std::size_t>(i));
            }
          }
        }
      }
    }
  }

  /// Serial sweep in the same slot order; reference for testing.
  template <typename VertexFn>
  void for_each_point_serial(VertexFn&& fn) const {
    SDCMD_REQUIRE(schedule_->built(), "rebuild() has not run yet");
    const Partition& part = schedule_->partition();
    for (std::size_t slot = 0; slot < part.subdomain_count(); ++slot) {
      for (std::uint32_t i : part.atoms_in_slot(slot)) {
        fn(static_cast<std::size_t>(i));
      }
    }
  }

 private:
  std::unique_ptr<SdcSchedule> schedule_;
  obs::SdcSweepProfiler* profiler_ = nullptr;  ///< not owned
};

}  // namespace sdcmd
