// Pair-potential force evaluation under the same reduction strategies.
//
// The paper notes SDC "can be applied in MD simulations with other
// potentials"; this type demonstrates it, and doubles as the baseline for
// the Section I workload claim (EAM ~ 2x the pair-potential computation:
// bench_eam_vs_pair). One computational phase instead of EAM's three.
#pragma once

#include <memory>
#include <span>

#include "common/timer.hpp"
#include "common/vec3.hpp"
#include "core/sdc_schedule.hpp"
#include "core/strategy.hpp"
#include "neighbor/neighbor_list.hpp"
#include "potential/potential.hpp"

namespace sdcmd {

class LockPool;

struct PairForceResult {
  double energy = 0.0;
  double virial = 0.0;
};

struct PairForceConfig {
  ReductionStrategy strategy = ReductionStrategy::Sdc;
  SdcConfig sdc;
  bool dynamic_schedule = false;
};

class PairForceComputer {
 public:
  PairForceComputer(const PairPotential& potential, PairForceConfig config);
  ~PairForceComputer();

  PairForceComputer(const PairForceComputer&) = delete;
  PairForceComputer& operator=(const PairForceComputer&) = delete;

  /// See EamForceComputer: required for Sdc before compute().
  void attach_schedule(const Box& box, double interaction_range);
  void on_neighbor_rebuild(std::span<const Vec3> positions);

  PairForceResult compute(const Box& box, std::span<const Vec3> positions,
                          const NeighborList& list, std::span<Vec3> force);

  /// Hot-swap the reduction strategy (see EamForceComputer::set_strategy).
  /// Workspaces are allocated lazily in compute(), so this only swaps the
  /// config and drops a stale SDC schedule; re-run attach_schedule +
  /// on_neighbor_rebuild before the next compute() when swapping TO Sdc.
  void set_strategy(ReductionStrategy strategy);

  const PairForceConfig& config() const { return config_; }
  PhaseTimers& timers() { return timers_; }
  const SdcSchedule* schedule() const { return schedule_.get(); }

 private:
  const PairPotential& potential_;
  PairForceConfig config_;
  std::unique_ptr<SdcSchedule> schedule_;
  std::unique_ptr<LockPool> locks_;
  std::vector<std::vector<Vec3>> sap_force_;
  PhaseTimers timers_;
  std::size_t t_force_;  ///< interned timer handle, see PhaseTimers
};

}  // namespace sdcmd
