#include "core/alloy_force.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace sdcmd {

namespace {

struct Args {
  const Box& box;
  std::span<const Vec3> x;
  std::span<const std::uint8_t> types;
  const NeighborList& list;
  const AlloyEamPotential& pot;
  double cutoff2;
};

/// Density contributions for every atom of one index range / slot.
/// Both directions of a pair are evaluated (phi depends on the donor
/// species, so the two contributions differ in general).
inline void density_atom(const Args& a, std::size_t i,
                         std::span<double> rho) {
  const Vec3 xi = a.x[i];
  const int ti = a.types[i];
  double rho_i = 0.0;
  for (std::uint32_t j : a.list.neighbors(i)) {
    const Vec3 dr = a.box.minimum_image(xi, a.x[j]);
    const double r2 = norm2(dr);
    if (r2 >= a.cutoff2) continue;
    const double r = std::sqrt(r2);
    double phi, dphi;
    a.pot.density(a.types[j], r, phi, dphi);  // j donates to i
    rho_i += phi;
    a.pot.density(ti, r, phi, dphi);          // i donates to j
    rho[j] += phi;
  }
  rho[i] += rho_i;
}

inline void force_atom(const Args& a, std::size_t i,
                       std::span<const double> fp, std::span<Vec3> force,
                       double& energy, double& virial) {
  const Vec3 xi = a.x[i];
  const int ti = a.types[i];
  const double fp_i = fp[i];
  Vec3 f_i{};
  for (std::uint32_t j : a.list.neighbors(i)) {
    const Vec3 dr = a.box.minimum_image(xi, a.x[j]);
    const double r2 = norm2(dr);
    if (r2 >= a.cutoff2) continue;
    const double r = std::sqrt(r2);
    const int tj = a.types[j];
    double v, dvdr, phi_i, dphi_i, phi_j, dphi_j;
    a.pot.pair(ti, tj, r, v, dvdr);
    a.pot.density(ti, r, phi_i, dphi_i);  // i's donation (felt by j)
    a.pot.density(tj, r, phi_j, dphi_j);  // j's donation (felt by i)
    const double fpair = -(dvdr + fp_i * dphi_j + fp[j] * dphi_i) / r;
    const Vec3 fv = fpair * dr;
    f_i += fv;
    force[j] -= fv;
    energy += v;
    virial += fpair * r2;
  }
  force[i] += f_i;
}

}  // namespace

AlloyForceComputer::AlloyForceComputer(const AlloyEamPotential& potential,
                                       AlloyForceConfig config)
    : potential_(potential),
      config_(config),
      t_density_(timers_.index("density")),
      t_embed_(timers_.index("embed")),
      t_force_(timers_.index("force")) {
  SDCMD_REQUIRE(config.strategy == ReductionStrategy::Serial ||
                    config.strategy == ReductionStrategy::Sdc,
                "alloy engine supports Serial and Sdc strategies");
}

void AlloyForceComputer::attach_schedule(const Box& box,
                                         double interaction_range) {
  if (config_.strategy != ReductionStrategy::Sdc) return;
  schedule_ =
      std::make_unique<SdcSchedule>(box, interaction_range, config_.sdc);
}

void AlloyForceComputer::on_neighbor_rebuild(
    std::span<const Vec3> positions) {
  if (config_.strategy != ReductionStrategy::Sdc) return;
  SDCMD_REQUIRE(schedule_ != nullptr,
                "attach_schedule must run before on_neighbor_rebuild");
  schedule_->rebuild(positions);
}

AlloyForceResult AlloyForceComputer::compute(
    const Box& box, std::span<const Vec3> positions,
    std::span<const std::uint8_t> types, const NeighborList& list,
    std::span<double> rho, std::span<double> fp, std::span<Vec3> force) {
  const std::size_t n = positions.size();
  SDCMD_REQUIRE(types.size() == n, "types must match the atom count");
  SDCMD_REQUIRE(rho.size() == n && fp.size() == n && force.size() == n,
                "output arrays must match the atom count");
  SDCMD_REQUIRE(list.mode() == NeighborMode::Half,
                "alloy engine needs a half neighbor list");
  SDCMD_REQUIRE(list.atom_count() == n, "neighbor list is stale");
  const int ns = potential_.species_count();
  for (std::uint8_t t : types) {
    SDCMD_REQUIRE(t < ns, "species index out of range");
  }

  const double cutoff = potential_.cutoff();
  Args args{box, positions, types, list, potential_, cutoff * cutoff};
  // First-touch zeroing: under SDC the sweeps are multi-threaded, so zero
  // with the same static distribution to place pages NUMA-locally.
  const bool parallel = config_.strategy != ReductionStrategy::Serial;
#pragma omp parallel for schedule(static) if (parallel)
  for (std::size_t i = 0; i < n; ++i) {
    rho[i] = 0.0;
    fp[i] = 0.0;
    force[i] = Vec3{};
  }

  AlloyForceResult result;

  {
    ScopedTimer timer(timers_.slot(t_density_));
    if (config_.strategy == ReductionStrategy::Serial) {
      for (std::size_t i = 0; i < n; ++i) density_atom(args, i, rho);
    } else {
      SDCMD_REQUIRE(schedule_ != nullptr && schedule_->built(),
                    "SDC schedule not built");
      const Partition& part = schedule_->partition();
      SDCMD_REQUIRE(part.atom_count() == n, "partition is stale");
      const int colors = part.color_count();
#pragma omp parallel
      {
        for (int c = 0; c < colors; ++c) {
#pragma omp for schedule(static)
          for (std::size_t slot = part.color_begin(c);
               slot < part.color_end(c); ++slot) {
            for (std::uint32_t i : part.atoms_in_slot(slot)) {
              density_atom(args, i, rho);
            }
          }
        }
      }
    }
  }

  {
    ScopedTimer timer(timers_.slot(t_embed_));
    double energy = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : energy) \
    if (config_.strategy != ReductionStrategy::Serial)
    for (std::size_t i = 0; i < n; ++i) {
      double f, dfdrho;
      potential_.embed(types[i], rho[i], f, dfdrho);
      fp[i] = dfdrho;
      energy += f;
    }
    result.embedding_energy = energy;
  }

  {
    ScopedTimer timer(timers_.slot(t_force_));
    double energy = 0.0;
    double virial = 0.0;
    if (config_.strategy == ReductionStrategy::Serial) {
      for (std::size_t i = 0; i < n; ++i) {
        force_atom(args, i, fp, force, energy, virial);
      }
    } else {
      const Partition& part = schedule_->partition();
      const int colors = part.color_count();
#pragma omp parallel reduction(+ : energy, virial)
      {
        for (int c = 0; c < colors; ++c) {
#pragma omp for schedule(static)
          for (std::size_t slot = part.color_begin(c);
               slot < part.color_end(c); ++slot) {
            for (std::uint32_t i : part.atoms_in_slot(slot)) {
              force_atom(args, i, fp, force, energy, virial);
            }
          }
        }
      }
    }
    result.pair_energy = energy;
    result.virial = virial;
  }
  return result;
}

}  // namespace sdcmd
