// Paper class 2: Shared Array Privatization (SAP).
//
// Every thread scatters into its own private copy of the reduction array;
// after the loop the copies are merged into the shared array. Memory grows
// linearly with the thread count - the paper's stated reason SAP stops
// scaling past ~8 cores (replicas evict useful cache lines and the merge
// traffic grows with threads).
//
// The merge here is parallelized over array index (each thread sums one
// index range across every replica), which is the strongest practical SAP
// variant; the paper's own implementation merged under a critical section
// and fared worse.
//
// Team kernels: orphaned OpenMP; the caller pre-sizes `priv` to at least
// the team size, and each thread zeroes its OWN replica (which also gives
// NUMA-friendly first-touch placement of replica pages).
#include <omp.h>

#include <algorithm>

#include "core/detail/eam_kernels.hpp"

namespace sdcmd::detail {

namespace {

/// Zero (or allocate-and-zero) the calling thread's replica.
template <typename T>
std::vector<T>& my_replica(std::vector<std::vector<T>>& priv, std::size_t n) {
  auto& mine = priv[static_cast<std::size_t>(omp_get_thread_num())];
  if (mine.size() != n) {
    mine.assign(n, T{});
  } else {
    std::fill(mine.begin(), mine.end(), T{});
  }
  return mine;
}

}  // namespace

void density_sap_team(const EamArgs& a, std::span<double> rho,
                      std::vector<std::vector<double>>& priv) {
  const std::size_t n = a.x.size();
  const int team = omp_get_num_threads();
  const auto& index = a.list.neigh_index();
  std::vector<double>& mine = my_replica(priv, n);
  // No barrier needed before the scatter: each thread touches only `mine`.
  if (a.soa.active()) {
    double* __restrict rep = mine.data();
#pragma omp for schedule(static)
    for (std::size_t i = 0; i < n; ++i) {
      rep[i] += soa_density_atom(
          a.soa, a.cutoff2, i,
          [rep](std::uint32_t j, double phi) { rep[j] += phi; });
    }
  } else {
#pragma omp for schedule(static)
    for (std::size_t i = 0; i < n; ++i) {
      const Vec3 xi = a.x[i];
      const auto nbrs = a.list.neighbors(i);
      const std::size_t base = index[i];
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        const std::uint32_t j = nbrs[k];
        double phi;
        if (!density_pair(a, xi, j, base + k, phi)) continue;
        mine[i] += phi;
        mine[j] += phi;
      }
    }
  }
  // Merge: each thread owns a contiguous index range and sums that range
  // across every replica (no synchronization beyond the implicit barrier).
#pragma omp for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (int t = 0; t < team; ++t) {
      sum += priv[static_cast<std::size_t>(t)][i];
    }
    rho[i] += sum;
  }
}

void force_sap_team(const EamArgs& a, std::span<const double> fp,
                    std::span<Vec3> force, double* energy_parts,
                    double* virial_parts,
                    std::vector<std::vector<Vec3>>& priv) {
  const std::size_t n = a.x.size();
  const int team = omp_get_num_threads();
  const auto& index = a.list.neigh_index();
  std::vector<Vec3>& mine = my_replica(priv, n);
  double energy = 0.0;
  double virial = 0.0;
  if (a.soa.active()) {
    Vec3* __restrict rep = mine.data();
#pragma omp for schedule(static)
    for (std::size_t i = 0; i < n; ++i) {
      SoaForceOut o;
      soa_force_atom(a.soa, fp.data(), fp[i], i, o,
                     [rep](std::uint32_t j, double fx, double fy, double fz) {
                       rep[j].x -= fx;
                       rep[j].y -= fy;
                       rep[j].z -= fz;
                     });
      rep[i].x += o.fx;
      rep[i].y += o.fy;
      rep[i].z += o.fz;
      energy += o.energy;
      virial += o.virial;
    }
  } else {
#pragma omp for schedule(static)
    for (std::size_t i = 0; i < n; ++i) {
      const Vec3 xi = a.x[i];
      const double fp_i = fp[i];
      const auto nbrs = a.list.neighbors(i);
      const std::size_t base = index[i];
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        const std::uint32_t j = nbrs[k];
        Vec3 fv;
        double v, rvir;
        if (!force_pair(a, xi, j, base + k, fp_i + fp[j], fv, v, rvir)) {
          continue;
        }
        mine[i] += fv;
        mine[j] -= fv;
        energy += v;
        virial += rvir;
      }
    }
  }
#pragma omp for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    Vec3 sum{};
    for (int t = 0; t < team; ++t) {
      sum += priv[static_cast<std::size_t>(t)][i];
    }
    force[i] += sum;
  }
  const int tid = omp_get_thread_num();
  energy_parts[tid] = energy;
  virial_parts[tid] = virial;
}

}  // namespace sdcmd::detail
