// Paper class 2: Shared Array Privatization (SAP).
//
// Every thread scatters into its own private copy of the reduction array;
// after the loop the copies are merged into the shared array. Memory grows
// linearly with the thread count - the paper's stated reason SAP stops
// scaling past ~8 cores (replicas evict useful cache lines and the merge
// traffic grows with threads).
//
// The merge here is parallelized over array index (each thread sums one
// index range across every replica), which is the strongest practical SAP
// variant; the paper's own implementation merged under a critical section
// and fared worse.
#include <omp.h>

#include "core/detail/eam_kernels.hpp"

namespace sdcmd::detail {

namespace {

/// Grow the per-thread replica set to `threads` buffers of `n` zeros.
template <typename T>
void ensure_replicas(std::vector<std::vector<T>>& priv, int threads,
                     std::size_t n) {
  priv.resize(static_cast<std::size_t>(threads));
  for (auto& buf : priv) {
    buf.assign(n, T{});
  }
}

}  // namespace

void density_sap(const EamArgs& a, std::span<double> rho,
                 std::vector<std::vector<double>>& priv) {
  const std::size_t n = a.x.size();
  const int threads = omp_get_max_threads();
  ensure_replicas(priv, threads, n);

#pragma omp parallel
  {
    std::vector<double>& mine =
        priv[static_cast<std::size_t>(omp_get_thread_num())];
#pragma omp for schedule(static)
    for (std::size_t i = 0; i < n; ++i) {
      const Vec3 xi = a.x[i];
      for (std::uint32_t j : a.list.neighbors(i)) {
        PairGeom g;
        if (!pair_geometry(a.box, xi, a.x[j], a.cutoff2, g)) continue;
        double phi, dphidr;
        a.pot.density(g.r, phi, dphidr);
        mine[i] += phi;
        mine[j] += phi;
      }
    }
    // Merge: each thread owns a contiguous index range and sums that range
    // across every replica (no synchronization beyond the implicit barrier).
#pragma omp for schedule(static)
    for (std::size_t i = 0; i < n; ++i) {
      double sum = 0.0;
      for (int t = 0; t < threads; ++t) {
        sum += priv[static_cast<std::size_t>(t)][i];
      }
      rho[i] += sum;
    }
  }
}

void force_sap(const EamArgs& a, std::span<const double> fp,
               std::span<Vec3> force, ForceSums& sums,
               std::vector<std::vector<Vec3>>& priv) {
  const std::size_t n = a.x.size();
  const int threads = omp_get_max_threads();
  ensure_replicas(priv, threads, n);

  double energy = 0.0;
  double virial = 0.0;
#pragma omp parallel reduction(+ : energy, virial)
  {
    std::vector<Vec3>& mine =
        priv[static_cast<std::size_t>(omp_get_thread_num())];
#pragma omp for schedule(static)
    for (std::size_t i = 0; i < n; ++i) {
      const Vec3 xi = a.x[i];
      const double fp_i = fp[i];
      for (std::uint32_t j : a.list.neighbors(i)) {
        PairGeom g;
        if (!pair_geometry(a.box, xi, a.x[j], a.cutoff2, g)) continue;
        double v, dvdr, phi, dphidr;
        a.pot.pair(g.r, v, dvdr);
        a.pot.density(g.r, phi, dphidr);
        const double fpair = -(dvdr + (fp_i + fp[j]) * dphidr) / g.r;
        const Vec3 fv = fpair * g.dr;
        mine[i] += fv;
        mine[j] -= fv;
        energy += v;
        virial += fpair * g.r * g.r;
      }
    }
#pragma omp for schedule(static)
    for (std::size_t i = 0; i < n; ++i) {
      Vec3 sum{};
      for (int t = 0; t < threads; ++t) {
        sum += priv[static_cast<std::size_t>(t)][i];
      }
      force[i] += sum;
    }
  }
  sums.pair_energy = energy;
  sums.virial = virial;
}

}  // namespace sdcmd::detail
