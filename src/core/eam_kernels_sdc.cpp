// The paper's contribution: Spatial Decomposition Coloring kernels
// (Figs. 7 and 8).
//
// The caller's single `#pragma omp parallel` region spans the whole step
// (the paper avoids re-forking per color; the fused pipeline extends that
// to density -> embed -> force). Inside these orphaned team kernels a
// serial loop walks the colors; for each color an orphaned `#pragma omp
// for` distributes that color's subdomains over the threads, and the
// loop's implicit barrier is the only synchronization. Same-color
// subdomains are >= 2 * interaction-range apart, so their scatter
// footprints are disjoint and the plain (non-atomic) `+=` updates below
// are race-free by construction.
//
// Profiling: when EamArgs carries an enabled SdcSweepProfiler the sweep
// runs an equivalent variant whose `omp for` is `nowait` followed by an
// explicit barrier, so each thread can clock its own work span and the
// time it then spends blocked at the color barrier - the load-imbalance /
// barrier-wait evidence of the paper's Table 1 discussion. The profiler
// pointer is uniform across the team, so every thread takes the same
// branch and the explicit barrier is encountered by all threads. With the
// profiler off the original untimed loop runs: no clock reads, one branch
// per color.
//
// Callers must check partition freshness (atom_count == x.size()) BEFORE
// the parallel region: throwing from inside it would terminate.
#include <omp.h>

#include "common/timer.hpp"
#include "core/detail/eam_kernels.hpp"

namespace sdcmd::detail {

namespace {

/// Density work for every atom of one subdomain slot.
inline void density_slot(const EamArgs& a, const Partition& part,
                         std::size_t slot, std::span<double> rho) {
  if (a.soa.active()) {
    // Same-color subdomains are conflict-free by construction, so the
    // scatter needs no protection - the SDC strategy keeps plain adds
    // even on the SoA path.
    double* __restrict out = rho.data();
    for (std::uint32_t i : part.atoms_in_slot(slot)) {
      out[i] += soa_density_atom(
          a.soa, a.cutoff2, i,
          [out](std::uint32_t j, double phi) { out[j] += phi; });
    }
    return;
  }
  const auto& index = a.list.neigh_index();
  for (std::uint32_t i : part.atoms_in_slot(slot)) {
    const Vec3 xi = a.x[i];
    const auto nbrs = a.list.neighbors(i);
    const std::size_t base = index[i];
    double rho_i = 0.0;
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const std::uint32_t j = nbrs[k];
      double phi;
      if (!density_pair(a, xi, j, base + k, phi)) continue;
      rho_i += phi;
      rho[j] += phi;  // scatter into a neighbor region: safe, see header
    }
    rho[i] += rho_i;
  }
}

/// Force work for every atom of one subdomain slot.
inline void force_slot(const EamArgs& a, const Partition& part,
                       std::size_t slot, std::span<const double> fp,
                       std::span<Vec3> force, double& energy,
                       double& virial) {
  if (a.soa.active()) {
    Vec3* __restrict out = force.data();
    for (std::uint32_t i : part.atoms_in_slot(slot)) {
      SoaForceOut o;
      soa_force_atom(a.soa, fp.data(), fp[i], i, o,
                     [out](std::uint32_t j, double fx, double fy, double fz) {
                       out[j].x -= fx;
                       out[j].y -= fy;
                       out[j].z -= fz;
                     });
      out[i].x += o.fx;
      out[i].y += o.fy;
      out[i].z += o.fz;
      energy += o.energy;
      virial += o.virial;
    }
    return;
  }
  const auto& index = a.list.neigh_index();
  for (std::uint32_t i : part.atoms_in_slot(slot)) {
    const Vec3 xi = a.x[i];
    const double fp_i = fp[i];
    const auto nbrs = a.list.neighbors(i);
    const std::size_t base = index[i];
    Vec3 f_i{};
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const std::uint32_t j = nbrs[k];
      Vec3 fv;
      double v, rvir;
      if (!force_pair(a, xi, j, base + k, fp_i + fp[j], fv, v, rvir)) {
        continue;
      }
      f_i += fv;
      force[j] -= fv;
      energy += v;
      virial += rvir;
    }
    force[i] += f_i;
  }
}

}  // namespace

void density_sdc_team(const EamArgs& a, const Partition& part,
                      std::span<double> rho) {
  const int colors = part.color_count();
  obs::SdcSweepProfiler* prof =
      (a.profiler != nullptr && a.profiler->enabled()) ? a.profiler : nullptr;
  const int tid = omp_get_thread_num();
  for (int c = 0; c < colors; ++c) {
    const std::size_t begin = part.color_begin(c);
    const std::size_t end = part.color_end(c);
    if (prof != nullptr) {
      obs::SweepSample sample;
      sample.start = wall_time();
      if (a.dynamic_schedule) {
#pragma omp for schedule(dynamic) nowait
        for (std::size_t slot = begin; slot < end; ++slot) {
          density_slot(a, part, slot, rho);
        }
      } else {
#pragma omp for schedule(static) nowait
        for (std::size_t slot = begin; slot < end; ++slot) {
          density_slot(a, part, slot, rho);
        }
      }
      const double t_work = wall_time();
#pragma omp barrier
      sample.work = t_work - sample.start;
      sample.wait = wall_time() - t_work;
      sample.valid = true;
      prof->record(kProfPhaseDensity, c, tid, sample);
    } else if (a.dynamic_schedule) {
#pragma omp for schedule(dynamic)
      for (std::size_t slot = begin; slot < end; ++slot) {
        density_slot(a, part, slot, rho);
      }
    } else {
#pragma omp for schedule(static)
      for (std::size_t slot = begin; slot < end; ++slot) {
        density_slot(a, part, slot, rho);
      }
    }
    // The barrier ending the `omp for` (implicit, or explicit in the
    // profiled variant) separates the colors: the paper's only
    // synchronization cost.
  }
}

void force_sdc_team(const EamArgs& a, const Partition& part,
                    std::span<const double> fp, std::span<Vec3> force,
                    double* energy_parts, double* virial_parts) {
  const int colors = part.color_count();
  obs::SdcSweepProfiler* prof =
      (a.profiler != nullptr && a.profiler->enabled()) ? a.profiler : nullptr;
  const int tid = omp_get_thread_num();
  double energy = 0.0;
  double virial = 0.0;
  for (int c = 0; c < colors; ++c) {
    const std::size_t begin = part.color_begin(c);
    const std::size_t end = part.color_end(c);
    if (prof != nullptr) {
      obs::SweepSample sample;
      sample.start = wall_time();
      if (a.dynamic_schedule) {
#pragma omp for schedule(dynamic) nowait
        for (std::size_t slot = begin; slot < end; ++slot) {
          force_slot(a, part, slot, fp, force, energy, virial);
        }
      } else {
#pragma omp for schedule(static) nowait
        for (std::size_t slot = begin; slot < end; ++slot) {
          force_slot(a, part, slot, fp, force, energy, virial);
        }
      }
      const double t_work = wall_time();
#pragma omp barrier
      sample.work = t_work - sample.start;
      sample.wait = wall_time() - t_work;
      sample.valid = true;
      prof->record(kProfPhaseForce, c, tid, sample);
    } else if (a.dynamic_schedule) {
#pragma omp for schedule(dynamic)
      for (std::size_t slot = begin; slot < end; ++slot) {
        force_slot(a, part, slot, fp, force, energy, virial);
      }
    } else {
#pragma omp for schedule(static)
      for (std::size_t slot = begin; slot < end; ++slot) {
        force_slot(a, part, slot, fp, force, energy, virial);
      }
    }
  }
  energy_parts[tid] = energy;
  virial_parts[tid] = virial;
}

}  // namespace sdcmd::detail
