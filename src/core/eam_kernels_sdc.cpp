// The paper's contribution: Spatial Decomposition Coloring kernels
// (Figs. 7 and 8).
//
// One `#pragma omp parallel` region spans the whole phase (the paper avoids
// re-forking per color). Inside it, a serial loop walks the colors; for
// each color an orphaned `#pragma omp for` distributes that color's
// subdomains over the threads, and the loop's implicit barrier is the only
// synchronization. Same-color subdomains are >= 2 * interaction-range
// apart, so their scatter footprints are disjoint and the plain (non-atomic)
// `+=` updates below are race-free by construction.
#include <omp.h>

#include "common/error.hpp"
#include "core/detail/eam_kernels.hpp"

namespace sdcmd::detail {

namespace {

/// Density work for every atom of one subdomain slot.
inline void density_slot(const EamArgs& a, const Partition& part,
                         std::size_t slot, std::span<double> rho) {
  for (std::uint32_t i : part.atoms_in_slot(slot)) {
    const Vec3 xi = a.x[i];
    double rho_i = 0.0;
    for (std::uint32_t j : a.list.neighbors(i)) {
      PairGeom g;
      if (!pair_geometry(a.box, xi, a.x[j], a.cutoff2, g)) continue;
      double phi, dphidr;
      a.pot.density(g.r, phi, dphidr);
      rho_i += phi;
      rho[j] += phi;  // scatter into a neighbor region: safe, see header
    }
    rho[i] += rho_i;
  }
}

/// Force work for every atom of one subdomain slot.
inline void force_slot(const EamArgs& a, const Partition& part,
                       std::size_t slot, std::span<const double> fp,
                       std::span<Vec3> force, double& energy,
                       double& virial) {
  for (std::uint32_t i : part.atoms_in_slot(slot)) {
    const Vec3 xi = a.x[i];
    const double fp_i = fp[i];
    Vec3 f_i{};
    for (std::uint32_t j : a.list.neighbors(i)) {
      PairGeom g;
      if (!pair_geometry(a.box, xi, a.x[j], a.cutoff2, g)) continue;
      double v, dvdr, phi, dphidr;
      a.pot.pair(g.r, v, dvdr);
      a.pot.density(g.r, phi, dphidr);
      const double fpair = -(dvdr + (fp_i + fp[j]) * dphidr) / g.r;
      const Vec3 fv = fpair * g.dr;
      f_i += fv;
      force[j] -= fv;
      energy += v;
      virial += fpair * g.r * g.r;
    }
    force[i] += f_i;
  }
}

}  // namespace

void density_sdc(const EamArgs& a, const Partition& part,
                 std::span<double> rho) {
  SDCMD_REQUIRE(part.atom_count() == a.x.size(),
                "partition is stale: rebuild the SDC schedule after the "
                "neighbor list");
  const int colors = part.color_count();
#pragma omp parallel
  {
    for (int c = 0; c < colors; ++c) {
      const std::size_t begin = part.color_begin(c);
      const std::size_t end = part.color_end(c);
      if (a.dynamic_schedule) {
#pragma omp for schedule(dynamic)
        for (std::size_t slot = begin; slot < end; ++slot) {
          density_slot(a, part, slot, rho);
        }
      } else {
#pragma omp for schedule(static)
        for (std::size_t slot = begin; slot < end; ++slot) {
          density_slot(a, part, slot, rho);
        }
      }
      // The `omp for` implicit barrier separates the colors: the paper's
      // only synchronization cost.
    }
  }
}

void force_sdc(const EamArgs& a, const Partition& part,
               std::span<const double> fp, std::span<Vec3> force,
               ForceSums& sums) {
  SDCMD_REQUIRE(part.atom_count() == a.x.size(),
                "partition is stale: rebuild the SDC schedule after the "
                "neighbor list");
  const int colors = part.color_count();
  double energy = 0.0;
  double virial = 0.0;
#pragma omp parallel reduction(+ : energy, virial)
  {
    for (int c = 0; c < colors; ++c) {
      const std::size_t begin = part.color_begin(c);
      const std::size_t end = part.color_end(c);
      if (a.dynamic_schedule) {
#pragma omp for schedule(dynamic)
        for (std::size_t slot = begin; slot < end; ++slot) {
          force_slot(a, part, slot, fp, force, energy, virial);
        }
      } else {
#pragma omp for schedule(static)
        for (std::size_t slot = begin; slot < end; ++slot) {
          force_slot(a, part, slot, fp, force, energy, virial);
        }
      }
    }
  }
  sums.pair_energy = energy;
  sums.virial = virial;
}

}  // namespace sdcmd::detail
