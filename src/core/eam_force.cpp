#include "core/eam_force.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/threads.hpp"
#include "core/detail/eam_kernels.hpp"
#include "core/lock_pool.hpp"

namespace sdcmd {

/// Reusable per-thread replicas for the ArrayPrivatization kernels. Kept
/// out of the header so callers don't depend on the buffer layout.
struct EamForceComputer::SapWorkspace {
  std::vector<std::vector<double>> rho;
  std::vector<std::vector<Vec3>> force;

  std::size_t bytes() const {
    std::size_t total = 0;
    for (const auto& b : rho) total += b.capacity() * sizeof(double);
    for (const auto& b : force) total += b.capacity() * sizeof(Vec3);
    return total;
  }
};

EamForceComputer::EamForceComputer(const EamPotential& potential,
                                   EamForceConfig config)
    : potential_(potential),
      config_(config),
      t_density_(timers_.index("density")),
      t_embed_(timers_.index("embed")),
      t_force_(timers_.index("force")) {
  if (config_.strategy == ReductionStrategy::ArrayPrivatization) {
    sap_ = std::make_unique<SapWorkspace>();
  }
  if (config_.strategy == ReductionStrategy::LockStriped) {
    locks_ = std::make_unique<LockPool>();
  }
}

EamForceComputer::~EamForceComputer() = default;

void EamForceComputer::attach_schedule(const Box& box,
                                       double interaction_range) {
  if (config_.strategy != ReductionStrategy::Sdc) return;
  schedule_ =
      std::make_unique<SdcSchedule>(box, interaction_range, config_.sdc);
}

void EamForceComputer::on_neighbor_rebuild(std::span<const Vec3> positions) {
  if (config_.strategy != ReductionStrategy::Sdc) return;
  SDCMD_REQUIRE(schedule_ != nullptr,
                "attach_schedule must run before on_neighbor_rebuild");
  schedule_->rebuild(positions);
}

EamForceResult EamForceComputer::compute(const Box& box,
                                         std::span<const Vec3> positions,
                                         const NeighborList& list,
                                         std::span<double> rho,
                                         std::span<double> fp,
                                         std::span<Vec3> force) {
  const std::size_t n = positions.size();
  SDCMD_REQUIRE(rho.size() == n && fp.size() == n && force.size() == n,
                "output arrays must match the atom count");
  SDCMD_REQUIRE(list.atom_count() == n, "neighbor list is stale");
  SDCMD_REQUIRE(list.mode() == required_mode(config_.strategy),
                "strategy " + to_string(config_.strategy) + " needs a " +
                    (required_mode(config_.strategy) == NeighborMode::Full
                         ? std::string("full")
                         : std::string("half")) +
                    " neighbor list");
  SDCMD_REQUIRE(list.cutoff() >= potential_.cutoff(),
                "neighbor list cutoff shorter than the potential range");

  const double cutoff = potential_.cutoff();
  detail::EamArgs args{box,        positions,
                       list,       potential_,
                       cutoff * cutoff, config_.dynamic_schedule,
                       nullptr};
  if (profiler_.enabled()) {
    // Shape the sample store to the current sweep (idempotent when
    // unchanged) and invalidate the previous step's samples.
    const int colors =
        config_.strategy == ReductionStrategy::Sdc && schedule_ != nullptr
            ? schedule_->color_count()
            : 1;
    profiler_.configure({"density", "embed", "force"}, colors,
                        max_threads());
    profiler_.begin_step();
    args.profiler = &profiler_;
  }

  std::fill(rho.begin(), rho.end(), 0.0);
  std::fill(force.begin(), force.end(), Vec3{});

  const bool parallel_embed = is_parallel(config_.strategy);
  EamForceResult result;

  {
    ScopedTimer timer(timers_.slot(t_density_));
    switch (config_.strategy) {
      case ReductionStrategy::Serial:
        detail::density_serial(args, rho);
        break;
      case ReductionStrategy::Critical:
        detail::density_critical(args, rho);
        break;
      case ReductionStrategy::Atomic:
        detail::density_atomic(args, rho);
        break;
      case ReductionStrategy::LockStriped:
        detail::density_locks(args, *locks_, rho);
        break;
      case ReductionStrategy::ArrayPrivatization:
        detail::density_sap(args, rho, sap_->rho);
        break;
      case ReductionStrategy::RedundantComputation:
        detail::density_rc(args, rho);
        break;
      case ReductionStrategy::Sdc:
        SDCMD_REQUIRE(schedule_ != nullptr && schedule_->built(),
                      "SDC schedule not built; call attach_schedule and "
                      "on_neighbor_rebuild first");
        detail::density_sdc(args, schedule_->partition(), rho);
        break;
    }
  }

  {
    ScopedTimer timer(timers_.slot(t_embed_));
    result.embedding_energy = detail::embed_phase(potential_, rho, fp,
                                                  parallel_embed,
                                                  args.profiler);
  }

  {
    ScopedTimer timer(timers_.slot(t_force_));
    detail::ForceSums sums;
    switch (config_.strategy) {
      case ReductionStrategy::Serial:
        detail::force_serial(args, fp, force, sums);
        break;
      case ReductionStrategy::Critical:
        detail::force_critical(args, fp, force, sums);
        break;
      case ReductionStrategy::Atomic:
        detail::force_atomic(args, fp, force, sums);
        break;
      case ReductionStrategy::LockStriped:
        detail::force_locks(args, *locks_, fp, force, sums);
        break;
      case ReductionStrategy::ArrayPrivatization:
        detail::force_sap(args, fp, force, sums, sap_->force);
        break;
      case ReductionStrategy::RedundantComputation:
        detail::force_rc(args, fp, force, sums);
        break;
      case ReductionStrategy::Sdc:
        detail::force_sdc(args, schedule_->partition(), fp, force, sums);
        break;
    }
    result.pair_energy = sums.pair_energy;
    result.virial = sums.virial;
  }

  // Exact work accounting (derived, not sampled: list sizes are exact).
  stats_.density_pair_visits += list.pair_count();
  stats_.force_pair_visits += list.pair_count();
  const bool scatters = config_.strategy != ReductionStrategy::RedundantComputation;
  if (scatters) stats_.scatter_updates += 2 * list.pair_count();
  if (config_.strategy == ReductionStrategy::Sdc) {
    stats_.color_sweeps += 2 * static_cast<std::size_t>(
                                   schedule_->color_count());
  }
  if (sap_) {
    stats_.private_array_bytes =
        std::max(stats_.private_array_bytes, sap_->bytes());
  }
  return result;
}

void EamForceComputer::reset_instrumentation() {
  timers_.reset();
  stats_ = EamKernelStats{};
}

}  // namespace sdcmd
