#include "core/eam_force.hpp"

#include <omp.h>

#include <algorithm>

#include "common/error.hpp"
#include "common/threads.hpp"
#include "core/detail/eam_kernels.hpp"
#include "core/lock_pool.hpp"

namespace sdcmd {

/// Reusable per-thread replicas for the ArrayPrivatization kernels. Kept
/// out of the header so callers don't depend on the buffer layout.
struct EamForceComputer::SapWorkspace {
  std::vector<std::vector<double>> rho;
  std::vector<std::vector<Vec3>> force;

  std::size_t bytes() const {
    std::size_t total = 0;
    for (const auto& b : rho) total += b.capacity() * sizeof(double);
    for (const auto& b : force) total += b.capacity() * sizeof(Vec3);
    return total;
  }
};

/// Per-pair geometry/spline cache, indexed by CSR slot (neigh_index[i] + k).
/// The density phase writes every slot; the force phase reads them back
/// instead of recomputing minimum image + sqrt + density spline. Reused
/// across steps: resize() keeps capacity when the pair count shrinks, so
/// steady-state steps never reallocate.
struct EamForceComputer::PairCache {
  std::vector<Vec3> dr;
  std::vector<double> r;
  std::vector<double> dphidr;

  void resize(std::size_t pairs) {
    dr.resize(pairs);
    r.resize(pairs);
    dphidr.resize(pairs);
  }

  detail::PairCacheRefs refs() {
    return detail::PairCacheRefs{dr.data(), r.data(), dphidr.data()};
  }

  std::size_t bytes() const {
    return dr.capacity() * sizeof(Vec3) +
           (r.capacity() + dphidr.capacity()) * sizeof(double);
  }
};

/// Owned storage behind detail::SoaView: the persistent x/y/z mirror of the
/// positions (refreshed inside the fused region every step) and the SoA
/// per-pair cache indexed by padded tile slot. Reused across steps like the
/// scalar PairCache; RC sizes the cache arrays to zero (gather kernels
/// never touch them).
struct EamForceComputer::SoaWorkspace {
  std::vector<double> x, y, z;  ///< n+1 slots; slot n backs the sentinel
  /// Padded tile slots: geometry + density derivative (the scalar cache's
  /// fields) plus 1/r and the pair spline's (v, dv/dr), hoisted into the
  /// density phase so the force replay is gather- and divide-free.
  std::vector<double> cdx, cdy, cdz, cr, cdphi, cir, cv, cdvdr;

  void resize(std::size_t n, std::size_t padded_slots) {
    x.resize(n + 1);
    y.resize(n + 1);
    z.resize(n + 1);
    // Sentinel lanes gather slot n before their mask applies; keep it at a
    // finite value so masked arithmetic stays exception-free.
    x[n] = 0.0;
    y[n] = 0.0;
    z[n] = 0.0;
    cdx.resize(padded_slots);
    cdy.resize(padded_slots);
    cdz.resize(padded_slots);
    cr.resize(padded_slots);
    cdphi.resize(padded_slots);
    cir.resize(padded_slots);
    cv.resize(padded_slots);
    cdvdr.resize(padded_slots);
  }

  std::size_t bytes() const {
    return (x.capacity() + y.capacity() + z.capacity() + cdx.capacity() +
            cdy.capacity() + cdz.capacity() + cr.capacity() +
            cdphi.capacity() + cir.capacity() + cv.capacity() +
            cdvdr.capacity()) *
           sizeof(double);
  }
};

EamForceComputer::EamForceComputer(const EamPotential& potential,
                                   EamForceConfig config)
    : potential_(potential),
      config_(config),
      cache_(std::make_unique<PairCache>()),
      t_density_(timers_.index("density")),
      t_embed_(timers_.index("embed")),
      t_force_(timers_.index("force")) {
  if (config_.strategy == ReductionStrategy::ArrayPrivatization) {
    sap_ = std::make_unique<SapWorkspace>();
  }
  if (config_.strategy == ReductionStrategy::LockStriped) {
    locks_ = std::make_unique<LockPool>();
  }
}

EamForceComputer::~EamForceComputer() = default;

void EamForceComputer::attach_schedule(const Box& box,
                                       double interaction_range) {
  if (config_.strategy == ReductionStrategy::Sdc) {
    schedule_ =
        std::make_unique<SdcSchedule>(box, interaction_range, config_.sdc);
  } else if (config_.strategy == ReductionStrategy::CellTask) {
    task_sched_ = std::make_unique<CellTaskSchedule>(box, interaction_range);
    // One lock per block: block -> lock is the identity, no stripe sharing.
    task_locks_ = std::make_unique<LockPool>(task_sched_->block_count());
  }
}

void EamForceComputer::set_strategy(ReductionStrategy strategy) {
  if (strategy == config_.strategy) return;
  SDCMD_REQUIRE(required_mode(strategy) == required_mode(config_.strategy),
                "cannot hot-swap " + to_string(config_.strategy) + " -> " +
                    to_string(strategy) +
                    ": the swap would change the neighbor-list mode");
  config_.strategy = strategy;
  if (strategy == ReductionStrategy::ArrayPrivatization && sap_ == nullptr) {
    sap_ = std::make_unique<SapWorkspace>();
  }
  if (strategy == ReductionStrategy::LockStriped && locks_ == nullptr) {
    locks_ = std::make_unique<LockPool>();
  }
  if (strategy != ReductionStrategy::Sdc) {
    // Free the sweep schedule; a later re-promotion rebuilds it via
    // attach_schedule + on_neighbor_rebuild.
    schedule_.reset();
  }
  if (strategy != ReductionStrategy::CellTask) {
    // Same discipline for the cell-task grid and its per-block locks.
    task_sched_.reset();
    task_locks_.reset();
  }
}

void EamForceComputer::on_neighbor_rebuild(std::span<const Vec3> positions) {
  if (config_.strategy == ReductionStrategy::Sdc) {
    SDCMD_REQUIRE(schedule_ != nullptr,
                  "attach_schedule must run before on_neighbor_rebuild");
    schedule_->rebuild(positions);
  } else if (config_.strategy == ReductionStrategy::CellTask) {
    SDCMD_REQUIRE(task_sched_ != nullptr,
                  "attach_schedule must run before on_neighbor_rebuild");
    task_sched_->rebuild(positions);
  }
}

EamForceResult EamForceComputer::compute(const Box& box,
                                         std::span<const Vec3> positions,
                                         const NeighborList& list,
                                         std::span<double> rho,
                                         std::span<double> fp,
                                         std::span<Vec3> force) {
  const std::size_t n = positions.size();
  SDCMD_REQUIRE(rho.size() == n && fp.size() == n && force.size() == n,
                "output arrays must match the atom count");
  SDCMD_REQUIRE(list.atom_count() == n, "neighbor list is stale");
  SDCMD_REQUIRE(list.mode() == required_mode(config_.strategy),
                "strategy " + to_string(config_.strategy) + " needs a " +
                    (required_mode(config_.strategy) == NeighborMode::Full
                         ? std::string("full")
                         : std::string("half")) +
                    " neighbor list");
  SDCMD_REQUIRE(list.cutoff() >= potential_.cutoff(),
                "neighbor list cutoff shorter than the potential range");
  // All preconditions are checked here, BEFORE the parallel region opens:
  // the kernels themselves must never throw.
  if (config_.strategy == ReductionStrategy::Sdc) {
    SDCMD_REQUIRE(schedule_ != nullptr && schedule_->built(),
                  "SDC schedule not built; call attach_schedule and "
                  "on_neighbor_rebuild first");
    SDCMD_REQUIRE(schedule_->partition().atom_count() == n,
                  "partition is stale: rebuild the SDC schedule after the "
                  "neighbor list");
  }
  if (config_.strategy == ReductionStrategy::CellTask) {
    SDCMD_REQUIRE(task_sched_ != nullptr && task_sched_->built() &&
                      task_locks_ != nullptr,
                  "cell-task schedule not built; call attach_schedule and "
                  "on_neighbor_rebuild first");
    SDCMD_REQUIRE(task_sched_->atom_count() == n,
                  "cell-task partition is stale: rebuild the schedule after "
                  "the neighbor list");
  }

  const double cutoff = potential_.cutoff();
  detail::EamArgs args{box,        positions,
                       list,       potential_,
                       cutoff * cutoff, config_.dynamic_schedule};
  if (config_.use_spline_tables) {
    // Devirtualize: tabulated potentials expose their spline knots as flat
    // POD tables the inner loops can evaluate inline.
    const EamSplineTables* tables = potential_.spline_tables();
    if (tables != nullptr && tables->valid()) args.tables = tables;
  }
  const bool caching =
      config_.use_pair_cache &&
      config_.strategy != ReductionStrategy::RedundantComputation;
  const bool rc =
      config_.strategy == ReductionStrategy::RedundantComputation;
  // SoA fast path: needs packed spline tables, a padded-tile list, and a
  // strategy whose kernels profit - RC's full-list gathers always, the
  // half-list scatter kernels only on explicit opt-in (they also need the
  // pair cache for the replay loop). The CellTask kernels are scalar-only
  // (staged cross-block scatter has no vector form), so they keep the
  // scalar loops even under soa_half_lists - a padded list built for the
  // opt-in just goes unused while CellTask is active, which keeps
  // neighbor_pad_width() stable across governor hot-swaps. Any miss falls
  // back to the scalar loops.
  const bool soa_on = config_.use_soa_path && args.tables != nullptr &&
                      args.tables->packed_valid() &&
                      list.has_padded_tiles() &&
                      config_.strategy != ReductionStrategy::CellTask &&
                      (rc || (caching && config_.soa_half_lists));
  if (soa_on) {
    if (soa_ == nullptr) soa_ = std::make_unique<SoaWorkspace>();
    soa_->resize(n, rc ? 0 : list.padded_pair_count());
    detail::SoaView sv;
    sv.x = soa_->x.data();
    sv.y = soa_->y.data();
    sv.z = soa_->z.data();
    sv.tile_index = list.tile_index().data();
    sv.tiles = list.padded_list().data();
    sv.len = list.neigh_len().data();
    sv.sent = list.pad_sentinel();
    const Vec3 len = box.lengths();
    sv.lx = box.periodic(0) ? len.x : 0.0;
    sv.ly = box.periodic(1) ? len.y : 0.0;
    sv.lz = box.periodic(2) ? len.z : 0.0;
    sv.ilx = box.periodic(0) ? 1.0 / len.x : 0.0;
    sv.ily = box.periodic(1) ? 1.0 / len.y : 0.0;
    sv.ilz = box.periodic(2) ? 1.0 / len.z : 0.0;
    sv.density = args.tables->density_packed;
    sv.pair = args.tables->pair_packed;
    sv.embed = args.tables->embed_packed;
    if (!rc) {
      sv.cdx = soa_->cdx.data();
      sv.cdy = soa_->cdy.data();
      sv.cdz = soa_->cdz.data();
      sv.cr = soa_->cr.data();
      sv.cdphi = soa_->cdphi.data();
      sv.cir = soa_->cir.data();
      sv.cv = soa_->cv.data();
      sv.cdvdr = soa_->cdvdr.data();
    }
    args.soa = sv;
  } else if (caching) {
    // The scalar cache is only needed when the SoA path (whose padded-slot
    // cache subsumes it) is not running.
    cache_->resize(list.pair_count());
    args.cache = cache_->refs();
  }

  if (profiler_.enabled()) {
    // Shape the sample store to the current sweep; the (string-building)
    // configure call runs only when the shape actually changed, so the
    // steady state does no string work.
    const int colors = config_.strategy == ReductionStrategy::Sdc
                           ? schedule_->color_count()
                           : 1;
    const int threads = max_threads();
    if (colors != prof_colors_ || threads != prof_threads_) {
      profiler_.configure({"density", "embed", "force"}, colors, threads);
      prof_colors_ = colors;
      prof_threads_ = threads;
    }
    profiler_.begin_step();
    args.profiler = &profiler_;
  }

  const bool hw = hw_profiler_.enabled();
  if (hw) {
    // Same reshape discipline as the sweep profiler: string work only when
    // the thread count actually changed.
    const int threads =
        config_.strategy == ReductionStrategy::Serial ? 1 : max_threads();
    if (threads != hw_threads_) {
      hw_profiler_.configure({"density", "embed", "force"}, threads);
      hw_threads_ = threads;
    }
    hw_profiler_.begin_step();
  }

  // SoA position mirror refresh targets (null when the path is off).
  double* sx = soa_on ? soa_->x.data() : nullptr;
  double* sy = soa_on ? soa_->y.data() : nullptr;
  double* sz = soa_on ? soa_->z.data() : nullptr;

  EamForceResult result;
  if (config_.strategy == ReductionStrategy::Serial) {
    std::fill(rho.begin(), rho.end(), 0.0);
    std::fill(force.begin(), force.end(), Vec3{});
    if (soa_on) {
      for (std::size_t i = 0; i < n; ++i) {
        sx[i] = positions[i].x;
        sy[i] = positions[i].y;
        sz[i] = positions[i].z;
      }
    }
    if (hw) hw_profiler_.thread_begin(0);
    {
      ScopedTimer timer(timers_.slot(t_density_));
      detail::density_serial(args, rho);
    }
    if (hw) hw_profiler_.thread_mark(0, 0);
    {
      ScopedTimer timer(timers_.slot(t_embed_));
      result.embedding_energy = detail::embed_serial(args, rho, fp);
    }
    if (hw) hw_profiler_.thread_mark(1, 0);
    {
      ScopedTimer timer(timers_.slot(t_force_));
      detail::ForceSums sums;
      detail::force_serial(args, fp, force, sums);
      result.pair_energy = sums.pair_energy;
      result.virial = sums.virial;
    }
    if (hw) hw_profiler_.thread_mark(2, 0);
  } else {
    // Fused pipeline: ONE parallel region covers zeroing, density, embed
    // and force, so each step pays a single fork/join instead of three
    // (plus serial zeroing) - the paper's "one parallel region per sweep"
    // idea extended to the whole step. Phase boundaries are the barriers
    // already ending each team kernel; the master clocks them so the
    // per-phase timers keep working.
    const int slots = max_threads();
    embed_parts_.assign(static_cast<std::size_t>(slots), 0.0);
    energy_parts_.assign(static_cast<std::size_t>(slots), 0.0);
    virial_parts_.assign(static_cast<std::size_t>(slots), 0.0);
    if (sap_ != nullptr) {
      // Replica *zeroing* happens inside the team kernels (each thread
      // first-touches its own replica); only the outer vector is sized here.
      sap_->rho.resize(static_cast<std::size_t>(slots));
      sap_->force.resize(static_cast<std::size_t>(slots));
    }
    if (config_.strategy == ReductionStrategy::CellTask) {
      // Work-stealing cursors/counters reset serially, BEFORE the region:
      // both phases' queues are armed here so no mid-region reset (and no
      // extra barrier) is needed between density and force.
      if (task_rt_ == nullptr) task_rt_ = std::make_unique<CellTaskRuntime>();
      task_rt_->reset(slots, task_sched_->block_count());
    }
    int team = 1;
    double t0 = 0.0, t1 = 0.0, t2 = 0.0, t3 = 0.0;
#pragma omp parallel
    {
      // Counter baselines are per-thread state, so unlike the master-only
      // clock reads below, every thread takes its own reading. The group fd
      // is opened lazily by the owning thread on first use.
      if (hw) hw_profiler_.thread_begin(omp_get_thread_num());
#pragma omp master
      {
        team = omp_get_num_threads();
        t0 = wall_time();
      }
      // First-touch zeroing: distributed with the same static schedule as
      // the atom sweeps so each page lands on the NUMA node of the thread
      // that will process it. The SoA position mirror refreshes in the
      // same sweep (one pass over the atoms, same page placement). The
      // implicit barrier orders both before the density scatter.
#pragma omp for schedule(static)
      for (std::size_t i = 0; i < n; ++i) {
        rho[i] = 0.0;
        fp[i] = 0.0;
        force[i] = Vec3{};
        if (sx != nullptr) {
          sx[i] = positions[i].x;
          sy[i] = positions[i].y;
          sz[i] = positions[i].z;
        }
      }
      switch (config_.strategy) {
        case ReductionStrategy::Critical:
          detail::density_critical_team(args, rho);
          break;
        case ReductionStrategy::Atomic:
          detail::density_atomic_team(args, rho);
          break;
        case ReductionStrategy::LockStriped:
          detail::density_locks_team(args, *locks_, rho);
          break;
        case ReductionStrategy::ArrayPrivatization:
          detail::density_sap_team(args, rho, sap_->rho);
          break;
        case ReductionStrategy::RedundantComputation:
          detail::density_rc_team(args, rho);
          break;
        case ReductionStrategy::Sdc:
          detail::density_sdc_team(args, schedule_->partition(), rho);
          break;
        case ReductionStrategy::CellTask:
          detail::density_task_team(args, *task_sched_, *task_rt_,
                                    *task_locks_, rho);
          break;
        case ReductionStrategy::Serial:
          break;  // handled above; unreachable
      }
      // Each team kernel ends at a barrier, so the master's clock reads
      // (and every thread's own counter reads) are true phase boundaries.
      if (hw) hw_profiler_.thread_mark(0, omp_get_thread_num());
#pragma omp master
      t1 = wall_time();
      detail::embed_team(args, rho, fp, embed_parts_.data());
      if (hw) hw_profiler_.thread_mark(1, omp_get_thread_num());
#pragma omp master
      t2 = wall_time();
      switch (config_.strategy) {
        case ReductionStrategy::Critical:
          detail::force_critical_team(args, fp, force, energy_parts_.data(),
                                      virial_parts_.data());
          break;
        case ReductionStrategy::Atomic:
          detail::force_atomic_team(args, fp, force, energy_parts_.data(),
                                    virial_parts_.data());
          break;
        case ReductionStrategy::LockStriped:
          detail::force_locks_team(args, *locks_, fp, force,
                                   energy_parts_.data(),
                                   virial_parts_.data());
          break;
        case ReductionStrategy::ArrayPrivatization:
          detail::force_sap_team(args, fp, force, energy_parts_.data(),
                                 virial_parts_.data(), sap_->force);
          break;
        case ReductionStrategy::RedundantComputation:
          detail::force_rc_team(args, fp, force, energy_parts_.data(),
                                virial_parts_.data());
          break;
        case ReductionStrategy::Sdc:
          detail::force_sdc_team(args, schedule_->partition(), fp, force,
                                 energy_parts_.data(), virial_parts_.data());
          break;
        case ReductionStrategy::CellTask:
          detail::force_task_team(args, *task_sched_, *task_rt_,
                                  *task_locks_, fp, force,
                                  energy_parts_.data(),
                                  virial_parts_.data());
          break;
        case ReductionStrategy::Serial:
          break;  // handled above; unreachable
      }
      if (hw) hw_profiler_.thread_mark(2, omp_get_thread_num());
#pragma omp master
      t3 = wall_time();
    }
    timers_.slot(t_density_).add_lap(t1 - t0);  // includes the zeroing sweep
    timers_.slot(t_embed_).add_lap(t2 - t1);
    timers_.slot(t_force_).add_lap(t3 - t2);
    // Sum the per-thread partials in thread order: deterministic for a
    // fixed team size (unlike an OpenMP reduction's arrival order).
    double embed_energy = 0.0, pair_energy = 0.0, virial = 0.0;
    for (int t = 0; t < team; ++t) {
      embed_energy += embed_parts_[static_cast<std::size_t>(t)];
      pair_energy += energy_parts_[static_cast<std::size_t>(t)];
      virial += virial_parts_[static_cast<std::size_t>(t)];
    }
    result.embedding_energy = embed_energy;
    result.pair_energy = pair_energy;
    result.virial = virial;
  }

  // Exact work accounting (derived, not sampled: list sizes are exact).
  stats_.density_pair_visits += list.pair_count();
  stats_.force_pair_visits += list.pair_count();
  const bool scatters = config_.strategy != ReductionStrategy::RedundantComputation;
  if (scatters) stats_.scatter_updates += 2 * list.pair_count();
  if (config_.strategy == ReductionStrategy::Sdc) {
    stats_.color_sweeps += 2 * static_cast<std::size_t>(
                                   schedule_->color_count());
  }
  if (config_.strategy == ReductionStrategy::CellTask &&
      task_rt_ != nullptr) {
    double busy_max = 0.0, busy_sum = 0.0, busy_min_s = 0.0;
    const int team_n = task_rt_->team();
    for (int t = 0; t < team_n; ++t) {
      const CellTaskRuntime::ThreadState& ts = task_rt_->thread(t);
      stats_.task_spawned += ts.tasks;
      stats_.task_steals += ts.steals;
      busy_max = std::max(busy_max, ts.busy_seconds);
      busy_sum += ts.busy_seconds;
      busy_min_s = t == 0 ? ts.busy_seconds
                          : std::min(busy_min_s, ts.busy_seconds);
    }
    stats_.task_max_queue_depth =
        std::max(stats_.task_max_queue_depth, task_rt_->max_queue_depth());
    if (busy_max > 0.0 && team_n > 0) {
      stats_.task_busy_min = busy_min_s / busy_max;
      stats_.task_busy_mean = busy_sum / (busy_max * team_n);
    } else {
      stats_.task_busy_min = 0.0;
      stats_.task_busy_mean = 0.0;
    }
  } else {
    stats_.task_busy_min = 0.0;
    stats_.task_busy_mean = 0.0;
  }
  if (sap_) {
    stats_.private_array_bytes =
        std::max(stats_.private_array_bytes, sap_->bytes());
  }
  if (soa_on) {
    ++stats_.soa_steps;
    stats_.soa_pad_fraction = list.pad_fraction();
    if (!rc) {
      // The SoA pair cache writes/reads every padded slot.
      stats_.cache_store_slots += list.padded_pair_count();
      stats_.cache_read_slots += list.padded_pair_count();
    }
    stats_.pair_cache_bytes =
        std::max(stats_.pair_cache_bytes, soa_->bytes());
  } else {
    stats_.soa_pad_fraction = 0.0;
    if (caching) {
      stats_.cache_store_slots += list.pair_count();
      stats_.cache_read_slots += list.pair_count();
      stats_.pair_cache_bytes =
          std::max(stats_.pair_cache_bytes, cache_->bytes());
    }
  }
  return result;
}

int EamForceComputer::neighbor_pad_width() const {
  const bool rc = config_.strategy == ReductionStrategy::RedundantComputation;
  const bool eligible =
      config_.use_soa_path && config_.use_spline_tables &&
      (rc ||
       (config_.use_pair_cache && config_.soa_half_lists));
  if (!eligible) return 0;
  const EamSplineTables* tables = potential_.spline_tables();
  if (tables == nullptr || !tables->packed_valid()) return 0;
  return detail::kSoaPadWidth;
}

EamForceResult EamForceComputer::compute_serial_reference(
    const Box& box, std::span<const Vec3> positions, const NeighborList& list,
    std::span<double> rho, std::span<double> fp,
    std::span<Vec3> force) const {
  const std::size_t n = positions.size();
  SDCMD_REQUIRE(rho.size() == n && fp.size() == n && force.size() == n,
                "output arrays must match the atom count");
  SDCMD_REQUIRE(list.atom_count() == n, "neighbor list is stale");
  SDCMD_REQUIRE(list.mode() == NeighborMode::Half,
                "the serial reference kernels walk a half neighbor list");
  const double cutoff = potential_.cutoff();
  detail::EamArgs args{box,        positions,
                       list,       potential_,
                       cutoff * cutoff, config_.dynamic_schedule};
  if (config_.use_spline_tables) {
    const EamSplineTables* tables = potential_.spline_tables();
    if (tables != nullptr && tables->valid()) args.tables = tables;
  }
  std::fill(rho.begin(), rho.end(), 0.0);
  std::fill(force.begin(), force.end(), Vec3{});
  EamForceResult result;
  detail::density_serial(args, rho);
  result.embedding_energy = detail::embed_serial(args, rho, fp);
  detail::ForceSums sums;
  detail::force_serial(args, fp, force, sums);
  result.pair_energy = sums.pair_energy;
  result.virial = sums.virial;
  return result;
}

void EamForceComputer::reset_instrumentation() {
  timers_.reset();
  stats_ = EamKernelStats{};
}

}  // namespace sdcmd
