// A pool of striped OpenMP locks.
//
// The LockStriped strategy guards scatter updates with a lock chosen by
// `atom_index % stripes`: contention drops with the stripe count instead of
// serializing the whole array behind one critical section. This is the
// textbook refinement of the paper's class 1 and a useful midpoint between
// `Critical` (1 effective lock) and `Atomic` (one RMW per scalar).
#pragma once

#include <omp.h>

#include <cstddef>
#include <memory>

namespace sdcmd {

class LockPool {
 public:
  explicit LockPool(std::size_t stripes = 1024);
  ~LockPool();

  LockPool(const LockPool&) = delete;
  LockPool& operator=(const LockPool&) = delete;

  std::size_t stripes() const { return stripes_; }

  void acquire(std::size_t index) {
    omp_set_lock(&locks_[index % stripes_]);
  }
  void release(std::size_t index) {
    omp_unset_lock(&locks_[index % stripes_]);
  }

  /// RAII guard for one striped lock.
  class Guard {
   public:
    Guard(LockPool& pool, std::size_t index) : pool_(pool), index_(index) {
      pool_.acquire(index_);
    }
    ~Guard() { pool_.release(index_); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    LockPool& pool_;
    std::size_t index_;
  };

 private:
  std::size_t stripes_;
  std::unique_ptr<omp_lock_t[]> locks_;
};

}  // namespace sdcmd
