#include "core/colored_reduction.hpp"

namespace sdcmd {

ColoredScatterEngine::ColoredScatterEngine(const Box& box,
                                           double interaction_range,
                                           SdcConfig config)
    : schedule_(
          std::make_unique<SdcSchedule>(box, interaction_range, config)) {}

void ColoredScatterEngine::rebuild(std::span<const Vec3> points) {
  schedule_->rebuild(points);
}

}  // namespace sdcmd
