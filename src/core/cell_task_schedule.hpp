// CellTaskSchedule: the block grid + work-stealing state behind the
// CellTask execution shape (Mangiardi/Meyer hybrid cell-task algorithm,
// arXiv:1611.00075; Meyer's many-core study arXiv:1305.4196).
//
// Where SDC separates conflicting subdomains in *time* (color sweeps with a
// barrier between colors), CellTask separates them with *locks taken only on
// actual conflict*: the box is cut into blocks with edge >= the interaction
// range, each block's atoms become one task, and a task holds its own
// block's lock while scattering into its own atoms. Contributions that land
// in a foreign block are staged in a per-thread buffer and flushed under the
// target block's lock afterwards - at most one lock is ever held at a time,
// so the scheme is deadlock-free regardless of how blocks interleave, and no
// thread ever waits at a color barrier.
//
// Scheduling is LPT work stealing: blocks are sorted by descending atom
// count, thread t's home queue is the strided slice {t, t+T, t+2T, ...} of
// that order, consumed through a per-thread atomic cursor. A thread whose
// home queue drains advances the other threads' cursors instead of idling -
// each such task counts as a steal. This is what makes the shape win on
// inhomogeneous systems (voids, surfaces, crack tips) where SDC's even
// spatial split load-balances badly.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/vec3.hpp"
#include "geom/box.hpp"

namespace sdcmd {

class CellTaskSchedule {
 public:
  /// Builds the block grid for `box`; `interaction_range` must cover
  /// cutoff + neighbor skin (block edges never drop below it, so most
  /// pairs stay intra-block). Throws InfeasibleError when the box yields
  /// fewer than two blocks - correctness would hold, but every scatter
  /// would serialize behind a single lock.
  CellTaskSchedule(const Box& box, double interaction_range);

  /// Non-throwing probe: would the constructor succeed? Exactly the
  /// constructor's arithmetic, so probe == build. Note the bound is two
  /// *blocks*, not SDC's two-subdomains-per-axis: CellTask stays feasible
  /// on thin boxes where even 1-D SDC cannot split.
  static bool feasible(const Box& box, double interaction_range);

  /// Re-bin atoms into blocks and recompute the LPT task order; call
  /// whenever the neighbor list is rebuilt (same cadence as the SDC
  /// partition).
  void rebuild(std::span<const Vec3> positions);

  std::size_t block_count() const { return block_count_; }
  bool built() const { return built_; }
  std::size_t atom_count() const { return block_of_atom_.size(); }

  /// Block owning atom `i` (valid after rebuild).
  std::uint32_t block_of(std::uint32_t atom) const {
    return block_of_atom_[atom];
  }

  /// Atoms of block `b`, CSR layout (valid after rebuild).
  std::span<const std::uint32_t> atoms_in_block(std::size_t b) const {
    return {bindex_.data() + bstart_[b], bindex_.data() + bstart_[b + 1]};
  }

  /// Blocks sorted by descending atom count - the LPT task order the
  /// work-stealing queues consume.
  const std::vector<std::uint32_t>& task_order() const { return order_; }

  /// Human-readable summary for bench headers:
  /// "cell-task, 4 x 4 x 4 = 64 blocks".
  std::string describe() const;

 private:
  std::uint32_t block_index(const Vec3& r) const;

  std::array<int, 3> dims_{};
  std::size_t block_count_ = 0;
  Vec3 lo_{};
  Vec3 inv_width_{};
  std::vector<std::size_t> bstart_;        // per block, atom offsets
  std::vector<std::uint32_t> bindex_;      // atom ids grouped by block
  std::vector<std::uint32_t> block_of_atom_;
  std::vector<std::uint32_t> order_;       // blocks, largest first
  bool built_ = false;
};

/// Shared work-stealing state for one fused step: per-thread queue cursors
/// (one per scatter phase so no mid-region reset is needed), per-thread
/// staging buffers for cross-block contributions, and the task.* counters.
/// Owned by the force computer, reset serially before the parallel region
/// opens, then shared by the whole team inside it.
class CellTaskRuntime {
 public:
  /// A staged cross-block density contribution: rho[j] += v.
  struct ScalarEntry {
    std::uint32_t j;
    double v;
  };
  /// A staged cross-block force contribution: force[j] -= f.
  struct VecEntry {
    std::uint32_t j;
    Vec3 f;
  };

  /// Cache-line separated per-thread state; cursors are the only fields
  /// other threads touch (when stealing).
  struct alignas(64) ThreadState {
    std::atomic<std::uint32_t> cursor[2];  // density / force phase queues
    std::size_t tasks = 0;                 // block tasks this thread ran
    std::size_t steals = 0;                // of those, from foreign queues
    double busy_seconds = 0.0;             // kernel time across both phases
    std::vector<ScalarEntry> rho_stage;
    std::vector<VecEntry> force_stage;
  };

  /// Size for `team` threads and zero the cursors/counters. Buffers keep
  /// their capacity across steps. Serial, before the region.
  void reset(int team, std::size_t blocks);

  int team() const { return team_; }
  std::size_t blocks() const { return blocks_; }
  ThreadState& thread(int tid) {
    return *threads_[static_cast<std::size_t>(tid)];
  }

  /// Longest home queue over the team at the last reset (= the max initial
  /// queue depth the stealing loop drains).
  std::size_t max_queue_depth() const;

  std::size_t bytes() const;

 private:
  int team_ = 0;
  std::size_t blocks_ = 0;
  std::vector<std::unique_ptr<ThreadState>> threads_;
};

}  // namespace sdcmd
