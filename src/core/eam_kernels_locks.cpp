// Lock-striped kernels: the fine-grained refinement of the paper's
// class 1. Each scatter target is guarded by `locks[j % stripes]`; the
// i-side accumulates privately and takes its stripe once per atom. Only
// one lock is ever held at a time, so there is no deadlock risk.
//
// Team kernels: orphaned OpenMP, called by every thread of the caller's
// parallel region (see eam_kernels.hpp).
#include <omp.h>

#include "core/detail/eam_kernels.hpp"
#include "core/lock_pool.hpp"

namespace sdcmd::detail {

void density_locks_team(const EamArgs& a, LockPool& locks,
                        std::span<double> rho) {
  const std::size_t n = a.x.size();
  if (a.soa.active()) {
    double* __restrict out = rho.data();
#pragma omp for schedule(static)
    for (std::size_t i = 0; i < n; ++i) {
      const double rho_i = soa_density_atom(
          a.soa, a.cutoff2, i, [out, &locks](std::uint32_t j, double phi) {
            LockPool::Guard guard(locks, j);
            out[j] += phi;
          });
      LockPool::Guard guard(locks, i);
      out[i] += rho_i;
    }
    return;
  }
  const auto& index = a.list.neigh_index();
#pragma omp for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 xi = a.x[i];
    const auto nbrs = a.list.neighbors(i);
    const std::size_t base = index[i];
    double rho_i = 0.0;
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const std::uint32_t j = nbrs[k];
      double phi;
      if (!density_pair(a, xi, j, base + k, phi)) continue;
      rho_i += phi;
      {
        LockPool::Guard guard(locks, j);
        rho[j] += phi;
      }
    }
    LockPool::Guard guard(locks, i);
    rho[i] += rho_i;
  }
}

void force_locks_team(const EamArgs& a, LockPool& locks,
                      std::span<const double> fp, std::span<Vec3> force,
                      double* energy_parts, double* virial_parts) {
  const std::size_t n = a.x.size();
  double energy = 0.0;
  double virial = 0.0;
  if (a.soa.active()) {
    Vec3* __restrict out = force.data();
#pragma omp for schedule(static)
    for (std::size_t i = 0; i < n; ++i) {
      SoaForceOut o;
      soa_force_atom(
          a.soa, fp.data(), fp[i], i, o,
          [out, &locks](std::uint32_t j, double fx, double fy, double fz) {
            LockPool::Guard guard(locks, j);
            out[j].x -= fx;
            out[j].y -= fy;
            out[j].z -= fz;
          });
      {
        LockPool::Guard guard(locks, i);
        out[i].x += o.fx;
        out[i].y += o.fy;
        out[i].z += o.fz;
      }
      energy += o.energy;
      virial += o.virial;
    }
    const int tid = omp_get_thread_num();
    energy_parts[tid] = energy;
    virial_parts[tid] = virial;
    return;
  }
  const auto& index = a.list.neigh_index();
#pragma omp for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 xi = a.x[i];
    const double fp_i = fp[i];
    const auto nbrs = a.list.neighbors(i);
    const std::size_t base = index[i];
    Vec3 f_i{};
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const std::uint32_t j = nbrs[k];
      Vec3 fv;
      double v, rvir;
      if (!force_pair(a, xi, j, base + k, fp_i + fp[j], fv, v, rvir)) {
        continue;
      }
      f_i += fv;
      {
        LockPool::Guard guard(locks, j);
        force[j] -= fv;
      }
      energy += v;
      virial += rvir;
    }
    LockPool::Guard guard(locks, i);
    force[i] += f_i;
  }
  const int tid = omp_get_thread_num();
  energy_parts[tid] = energy;
  virial_parts[tid] = virial;
}

}  // namespace sdcmd::detail
