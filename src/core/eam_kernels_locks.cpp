// Lock-striped kernels: the fine-grained refinement of the paper's
// class 1. Each scatter target is guarded by `locks[j % stripes]`; the
// i-side accumulates privately and takes its stripe once per atom. Only
// one lock is ever held at a time, so there is no deadlock risk.
#include <omp.h>

#include "core/detail/eam_kernels.hpp"
#include "core/lock_pool.hpp"

namespace sdcmd::detail {

void density_locks(const EamArgs& a, LockPool& locks,
                   std::span<double> rho) {
  const std::size_t n = a.x.size();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 xi = a.x[i];
    double rho_i = 0.0;
    for (std::uint32_t j : a.list.neighbors(i)) {
      PairGeom g;
      if (!pair_geometry(a.box, xi, a.x[j], a.cutoff2, g)) continue;
      double phi, dphidr;
      a.pot.density(g.r, phi, dphidr);
      rho_i += phi;
      {
        LockPool::Guard guard(locks, j);
        rho[j] += phi;
      }
    }
    LockPool::Guard guard(locks, i);
    rho[i] += rho_i;
  }
}

void force_locks(const EamArgs& a, LockPool& locks,
                 std::span<const double> fp, std::span<Vec3> force,
                 ForceSums& sums) {
  const std::size_t n = a.x.size();
  double energy = 0.0;
  double virial = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : energy, virial)
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 xi = a.x[i];
    const double fp_i = fp[i];
    Vec3 f_i{};
    for (std::uint32_t j : a.list.neighbors(i)) {
      PairGeom g;
      if (!pair_geometry(a.box, xi, a.x[j], a.cutoff2, g)) continue;
      double v, dvdr, phi, dphidr;
      a.pot.pair(g.r, v, dvdr);
      a.pot.density(g.r, phi, dphidr);
      const double fpair = -(dvdr + (fp_i + fp[j]) * dphidr) / g.r;
      const Vec3 fv = fpair * g.dr;
      f_i += fv;
      {
        LockPool::Guard guard(locks, j);
        force[j] -= fv;
      }
      energy += v;
      virial += fpair * g.r * g.r;
    }
    LockPool::Guard guard(locks, i);
    force[i] += f_i;
  }
  sums.pair_energy = energy;
  sums.virial = virial;
}

}  // namespace sdcmd::detail
