#include "core/cell_direct.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "core/detail/eam_kernels.hpp"

namespace sdcmd {

namespace {

/// Apply `f(i, j, geom)` to every distinct pair within the cutoff, each
/// pair exactly once, by sweeping each cell against itself and the 13
/// "upper half" stencil neighbors.
template <typename PairFn>
void for_each_pair(const Box& box, const CellList& cells,
                   std::span<const Vec3> x, double cutoff2, PairFn&& f) {
  // Half stencil: offsets lexicographically greater than (0,0,0).
  static constexpr int kHalf[13][3] = {
      {1, -1, -1}, {1, -1, 0}, {1, -1, 1}, {1, 0, -1}, {1, 0, 0},
      {1, 0, 1},   {1, 1, -1}, {1, 1, 0},  {1, 1, 1},  {0, 1, -1},
      {0, 1, 0},   {0, 1, 1},  {0, 0, 1}};

  const int nx = cells.nx(), ny = cells.ny(), nz = cells.nz();
  auto flat = [&](int ix, int iy, int iz) {
    return (static_cast<std::size_t>(ix) * ny + iy) * nz + iz;
  };

  detail::PairGeom geom;
  for (int ix = 0; ix < nx; ++ix) {
    for (int iy = 0; iy < ny; ++iy) {
      for (int iz = 0; iz < nz; ++iz) {
        const auto home = cells.atoms_in(flat(ix, iy, iz));
        // Pairs within the home cell.
        for (std::size_t a = 0; a < home.size(); ++a) {
          for (std::size_t b = a + 1; b < home.size(); ++b) {
            if (detail::pair_geometry(box, x[home[a]], x[home[b]], cutoff2,
                                      geom)) {
              f(home[a], home[b], geom);
            }
          }
        }
        // Pairs against the upper-half stencil.
        for (const auto& offset : kHalf) {
          int jx = ix + offset[0], jy = iy + offset[1], jz = iz + offset[2];
          bool valid = true;
          int idx[3] = {jx, jy, jz};
          const int dims[3] = {nx, ny, nz};
          for (int d = 0; d < 3; ++d) {
            if (idx[d] < 0 || idx[d] >= dims[d]) {
              if (box.periodic(d)) {
                idx[d] = (idx[d] + dims[d]) % dims[d];
              } else {
                valid = false;
                break;
              }
            }
          }
          if (!valid) continue;
          const auto other = cells.atoms_in(flat(idx[0], idx[1], idx[2]));
          for (std::uint32_t i : home) {
            for (std::uint32_t j : other) {
              if (detail::pair_geometry(box, x[i], x[j], cutoff2, geom)) {
                f(i, j, geom);
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace

EamForceResult eam_cell_direct(const Box& box,
                               std::span<const Vec3> positions,
                               const EamPotential& potential,
                               std::span<double> rho, std::span<double> fp,
                               std::span<Vec3> force) {
  const std::size_t n = positions.size();
  SDCMD_REQUIRE(rho.size() == n && fp.size() == n && force.size() == n,
                "output arrays must match the atom count");

  CellList cells(box, potential.cutoff());
  for (int d = 0; d < 3; ++d) {
    if (box.periodic(d)) {
      const int count = d == 0 ? cells.nx() : (d == 1 ? cells.ny()
                                                      : cells.nz());
      SDCMD_REQUIRE(count >= 3,
                    "cell-direct sweep needs >= 3 cells per periodic "
                    "dimension; use the Verlet-list path for small boxes");
    }
  }
  cells.build(positions);

  const double cutoff2 = potential.cutoff() * potential.cutoff();
  std::fill(rho.begin(), rho.end(), 0.0);
  std::fill(force.begin(), force.end(), Vec3{});

  // Phase 1: densities.
  for_each_pair(box, cells, positions, cutoff2,
                [&](std::uint32_t i, std::uint32_t j,
                    const detail::PairGeom& g) {
                  double phi, dphi;
                  potential.density(g.r, phi, dphi);
                  rho[i] += phi;
                  rho[j] += phi;
                });

  // Phase 2: embedding.
  EamForceResult result;
  result.embedding_energy = detail::embed_phase(potential, rho, fp, false);

  // Phase 3: forces.
  double energy = 0.0, virial = 0.0;
  for_each_pair(box, cells, positions, cutoff2,
                [&](std::uint32_t i, std::uint32_t j,
                    const detail::PairGeom& g) {
                  double v, dvdr, phi, dphi;
                  potential.pair(g.r, v, dvdr);
                  potential.density(g.r, phi, dphi);
                  const double fpair =
                      -(dvdr + (fp[i] + fp[j]) * dphi) / g.r;
                  const Vec3 fv = fpair * g.dr;
                  force[i] += fv;
                  force[j] -= fv;
                  energy += v;
                  virial += fpair * g.r * g.r;
                });
  result.pair_energy = energy;
  result.virial = virial;
  return result;
}

}  // namespace sdcmd
