#include "core/race_check.hpp"

#include <sstream>

#include "common/error.hpp"

namespace sdcmd {

std::string RaceCheckReport::describe() const {
  if (race_free) return "race-free: all same-color footprints disjoint";
  std::ostringstream os;
  os << "RACE: color " << color << ": atom " << atom
     << " is written by both subdomain slot " << slot_a << " and slot "
     << slot_b;
  return os.str();
}

RaceCheckReport check_schedule_race_free(const SdcSchedule& schedule,
                                         const NeighborList& list) {
  SDCMD_REQUIRE(schedule.built(), "schedule has no atom partition yet");
  const Partition& part = schedule.partition();
  SDCMD_REQUIRE(part.atom_count() == list.atom_count(),
                "partition and neighbor list cover different atom sets");

  RaceCheckReport report;
  // owner[atom] = slot that wrote it during the current color sweep;
  // kNobody between sweeps.
  constexpr std::size_t kNobody = static_cast<std::size_t>(-1);
  std::vector<std::size_t> owner(list.atom_count(), kNobody);
  std::vector<std::uint32_t> touched;  // for cheap per-color reset

  for (int c = 0; c < part.color_count(); ++c) {
    touched.clear();
    for (std::size_t slot = part.color_begin(c); slot < part.color_end(c);
         ++slot) {
      auto claim = [&](std::uint32_t atom) {
        if (owner[atom] == kNobody) {
          owner[atom] = slot;
          touched.push_back(atom);
          return true;
        }
        return owner[atom] == slot;
      };
      for (std::uint32_t i : part.atoms_in_slot(slot)) {
        // The kernels write rho[i]/force[i] and scatter to every listed
        // neighbor j.
        if (!claim(i)) {
          report.race_free = false;
          report.color = c;
          report.atom = i;
          report.slot_a = owner[i];
          report.slot_b = slot;
          return report;
        }
        for (std::uint32_t j : list.neighbors(i)) {
          if (!claim(j)) {
            report.race_free = false;
            report.color = c;
            report.atom = j;
            report.slot_a = owner[j];
            report.slot_b = slot;
            return report;
          }
        }
      }
    }
    for (std::uint32_t atom : touched) owner[atom] = kNobody;
  }
  return report;
}

}  // namespace sdcmd
