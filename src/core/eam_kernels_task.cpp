// CellTask kernels: the Mangiardi/Meyer hybrid cell-task execution shape
// (arXiv:1611.00075) - the third shape beyond serial loops and SDC's color
// barriers.
//
// Each cell block of the CellTaskSchedule is one task. A task acquires its
// own block's lock, scatters plain (non-atomic) updates into its own atoms,
// and STAGES every contribution that lands in a foreign block in a
// thread-local buffer. After releasing its own lock it flushes the staged
// entries under the target blocks' locks, one at a time - at most one lock
// is ever held, so no lock-order cycle can form and the scheme is
// deadlock-free for any block geometry. Every write to an atom of block B
// happens under lock B, which is what TSan verifies on this path.
//
// Scheduling is LPT work stealing (CellTaskRuntime): blocks sorted largest
// first, per-thread strided home queues consumed through atomic cursors,
// and exhausted threads drain the other queues with the same fetch_add the
// owner uses - a task runs exactly once no matter who claims it, and no
// thread idles while any queue holds work. Unlike SDC there is no barrier
// between conflict groups; the only barrier is the phase boundary the fused
// pipeline needs anyway (density results must be complete before embed).
//
// Profiling: the phase is colorless, so an enabled SdcSweepProfiler gets a
// single color-0 record per thread: work = the whole stealing loop
// (including lock waits - contention is work-path cost here, not barrier
// cost), wait = the time blocked at the phase barrier. Per-thread busy
// seconds always accumulate into the runtime (two clock reads per phase)
// so the task.* busy-fraction gauges don't need the profiler.
#include <omp.h>

#include "common/timer.hpp"
#include "core/cell_task_schedule.hpp"
#include "core/detail/eam_kernels.hpp"
#include "core/lock_pool.hpp"

namespace sdcmd::detail {

namespace {

/// Drain queue `q` (0 = density, 1 = force): own strided slice first, then
/// steal round-robin. `body` runs one block task.
template <class Body>
void run_queue(const CellTaskSchedule& sched, CellTaskRuntime& rt, int q,
               int tid, Body&& body) {
  const std::vector<std::uint32_t>& order = sched.task_order();
  const std::size_t nblocks = order.size();
  const std::size_t team = static_cast<std::size_t>(rt.team());
  CellTaskRuntime::ThreadState& me = rt.thread(tid);
  for (;;) {
    const std::uint32_t k =
        me.cursor[q].fetch_add(1, std::memory_order_relaxed);
    const std::size_t pos =
        static_cast<std::size_t>(tid) + static_cast<std::size_t>(k) * team;
    if (pos >= nblocks) break;
    body(order[pos]);
    ++me.tasks;
  }
  for (std::size_t off = 1; off < team; ++off) {
    const std::size_t victim =
        (static_cast<std::size_t>(tid) + off) % team;
    CellTaskRuntime::ThreadState& vs =
        rt.thread(static_cast<int>(victim));
    for (;;) {
      const std::uint32_t k =
          vs.cursor[q].fetch_add(1, std::memory_order_relaxed);
      const std::size_t pos = victim + static_cast<std::size_t>(k) * team;
      if (pos >= nblocks) break;
      body(order[pos]);
      ++me.tasks;
      ++me.steals;
    }
  }
}

/// Density work for one block task. Own-block scatter runs under lock `b`;
/// cross-block contributions are staged and flushed afterwards under the
/// target locks, grouped by contiguous target-block runs (sorted neighbor
/// lists cluster them) so the lock churn stays low.
void density_block(const EamArgs& a, const CellTaskSchedule& sched,
                   LockPool& locks, std::uint32_t b,
                   std::vector<CellTaskRuntime::ScalarEntry>& stage,
                   std::span<double> rho) {
  const auto& index = a.list.neigh_index();
  locks.acquire(b);
  for (std::uint32_t i : sched.atoms_in_block(b)) {
    const Vec3 xi = a.x[i];
    const auto nbrs = a.list.neighbors(i);
    const std::size_t base = index[i];
    double rho_i = 0.0;
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const std::uint32_t j = nbrs[k];
      double phi;
      if (!density_pair(a, xi, j, base + k, phi)) continue;
      rho_i += phi;
      if (sched.block_of(j) == b) {
        rho[j] += phi;  // own block: protected by the lock we hold
      } else {
        stage.push_back({j, phi});
      }
    }
    rho[i] += rho_i;
  }
  locks.release(b);
  std::size_t k = 0;
  while (k < stage.size()) {
    const std::uint32_t tb = sched.block_of(stage[k].j);
    locks.acquire(tb);
    do {
      rho[stage[k].j] += stage[k].v;
      ++k;
    } while (k < stage.size() && sched.block_of(stage[k].j) == tb);
    locks.release(tb);
  }
  stage.clear();
}

/// Force work for one block task; same locking shape as density_block.
void force_block(const EamArgs& a, const CellTaskSchedule& sched,
                 LockPool& locks, std::uint32_t b,
                 std::vector<CellTaskRuntime::VecEntry>& stage,
                 std::span<const double> fp, std::span<Vec3> force,
                 double& energy, double& virial) {
  const auto& index = a.list.neigh_index();
  locks.acquire(b);
  for (std::uint32_t i : sched.atoms_in_block(b)) {
    const Vec3 xi = a.x[i];
    const double fp_i = fp[i];
    const auto nbrs = a.list.neighbors(i);
    const std::size_t base = index[i];
    Vec3 f_i{};
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const std::uint32_t j = nbrs[k];
      Vec3 fv;
      double v, rvir;
      if (!force_pair(a, xi, j, base + k, fp_i + fp[j], fv, v, rvir)) {
        continue;
      }
      f_i += fv;
      energy += v;
      virial += rvir;
      if (sched.block_of(j) == b) {
        force[j] -= fv;
      } else {
        stage.push_back({j, fv});
      }
    }
    force[i] += f_i;
  }
  locks.release(b);
  std::size_t k = 0;
  while (k < stage.size()) {
    const std::uint32_t tb = sched.block_of(stage[k].j);
    locks.acquire(tb);
    do {
      force[stage[k].j] -= stage[k].f;
      ++k;
    } while (k < stage.size() && sched.block_of(stage[k].j) == tb);
    locks.release(tb);
  }
  stage.clear();
}

}  // namespace

void density_task_team(const EamArgs& a, const CellTaskSchedule& sched,
                       CellTaskRuntime& rt, LockPool& locks,
                       std::span<double> rho) {
  obs::SdcSweepProfiler* prof =
      (a.profiler != nullptr && a.profiler->enabled()) ? a.profiler : nullptr;
  const int tid = omp_get_thread_num();
  CellTaskRuntime::ThreadState& me = rt.thread(tid);
  const double t0 = wall_time();
  run_queue(sched, rt, 0, tid, [&](std::uint32_t b) {
    density_block(a, sched, locks, b, me.rho_stage, rho);
  });
  const double t_work = wall_time();
  me.busy_seconds += t_work - t0;
#pragma omp barrier
  if (prof != nullptr) {
    obs::SweepSample sample;
    sample.start = t0;
    sample.work = t_work - t0;
    sample.wait = wall_time() - t_work;
    sample.valid = true;
    prof->record(kProfPhaseDensity, 0, tid, sample);
  }
}

void force_task_team(const EamArgs& a, const CellTaskSchedule& sched,
                     CellTaskRuntime& rt, LockPool& locks,
                     std::span<const double> fp, std::span<Vec3> force,
                     double* energy_parts, double* virial_parts) {
  obs::SdcSweepProfiler* prof =
      (a.profiler != nullptr && a.profiler->enabled()) ? a.profiler : nullptr;
  const int tid = omp_get_thread_num();
  CellTaskRuntime::ThreadState& me = rt.thread(tid);
  double energy = 0.0;
  double virial = 0.0;
  const double t0 = wall_time();
  run_queue(sched, rt, 1, tid, [&](std::uint32_t b) {
    force_block(a, sched, locks, b, me.force_stage, fp, force, energy,
                virial);
  });
  const double t_work = wall_time();
  me.busy_seconds += t_work - t0;
  energy_parts[tid] = energy;
  virial_parts[tid] = virial;
#pragma omp barrier
  if (prof != nullptr) {
    obs::SweepSample sample;
    sample.start = t0;
    sample.work = t_work - t0;
    sample.wait = wall_time() - t_work;
    sample.valid = true;
    prof->record(kProfPhaseForce, 0, tid, sample);
  }
}

}  // namespace sdcmd::detail
