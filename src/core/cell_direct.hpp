// Cell-direct EAM evaluation: compute forces straight from the linked-cell
// grid, with no Verlet list at all.
//
// The design alternative to the paper's neighbor-list pipeline. Per step it
// saves the list build but pays ~2-3x the distance checks (every pair in
// the 27-cell neighborhood is tested every step, where a Verlet list
// pre-filters once per skin interval). bench_neighbor_policy quantifies the
// trade; the test suite pins its output to the list-based kernels.
//
// Serial only: this is a reference/measurement path, not a strategy.
#pragma once

#include <span>

#include "core/eam_force.hpp"
#include "neighbor/cell_list.hpp"

namespace sdcmd {

/// Evaluate the three EAM phases directly over a cell grid built with at
/// least the potential cutoff. Requires >= 3 cells along every periodic
/// dimension (so the half-stencil pair sweep never double-counts).
/// Outputs match EamForceComputer::compute with a half list.
EamForceResult eam_cell_direct(const Box& box,
                               std::span<const Vec3> positions,
                               const EamPotential& potential,
                               std::span<double> rho, std::span<double> fp,
                               std::span<Vec3> force);

}  // namespace sdcmd
