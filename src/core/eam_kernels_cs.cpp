// Paper class 1 kernels: synchronization around every scatter update.
//
//  * Critical - the literal strategy the paper benchmarks: the references
//    to the reduction array are enclosed in `#pragma omp critical`, so all
//    threads serialize on one lock for every pair. This is intentionally
//    the naive pattern; its collapse in Fig. 9 is a result, not a bug.
//  * Atomic   - the per-scalar `#pragma omp atomic` refinement; still one
//    RMW bus transaction per array element per pair.
#include <omp.h>

#include "core/detail/eam_kernels.hpp"

namespace sdcmd::detail {

void density_critical(const EamArgs& a, std::span<double> rho) {
  const std::size_t n = a.x.size();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 xi = a.x[i];
    for (std::uint32_t j : a.list.neighbors(i)) {
      PairGeom g;
      if (!pair_geometry(a.box, xi, a.x[j], a.cutoff2, g)) continue;
      double phi, dphidr;
      a.pot.density(g.r, phi, dphidr);
#pragma omp critical(sdcmd_density)
      {
        rho[i] += phi;
        rho[j] += phi;
      }
    }
  }
}

void density_atomic(const EamArgs& a, std::span<double> rho) {
  const std::size_t n = a.x.size();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 xi = a.x[i];
    double rho_i = 0.0;
    for (std::uint32_t j : a.list.neighbors(i)) {
      PairGeom g;
      if (!pair_geometry(a.box, xi, a.x[j], a.cutoff2, g)) continue;
      double phi, dphidr;
      a.pot.density(g.r, phi, dphidr);
      rho_i += phi;  // rho[i] is only *scattered to* via the j side below,
                     // so the i-side accumulates privately
#pragma omp atomic
      rho[j] += phi;
    }
#pragma omp atomic
    rho[i] += rho_i;
  }
}

void force_critical(const EamArgs& a, std::span<const double> fp,
                    std::span<Vec3> force, ForceSums& sums) {
  const std::size_t n = a.x.size();
  double energy = 0.0;
  double virial = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : energy, virial)
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 xi = a.x[i];
    const double fp_i = fp[i];
    for (std::uint32_t j : a.list.neighbors(i)) {
      PairGeom g;
      if (!pair_geometry(a.box, xi, a.x[j], a.cutoff2, g)) continue;
      double v, dvdr, phi, dphidr;
      a.pot.pair(g.r, v, dvdr);
      a.pot.density(g.r, phi, dphidr);
      const double fpair = -(dvdr + (fp_i + fp[j]) * dphidr) / g.r;
      const Vec3 fv = fpair * g.dr;
#pragma omp critical(sdcmd_force)
      {
        force[i] += fv;
        force[j] -= fv;
      }
      energy += v;
      virial += fpair * g.r * g.r;
    }
  }
  sums.pair_energy = energy;
  sums.virial = virial;
}

void force_atomic(const EamArgs& a, std::span<const double> fp,
                  std::span<Vec3> force, ForceSums& sums) {
  const std::size_t n = a.x.size();
  double energy = 0.0;
  double virial = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : energy, virial)
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 xi = a.x[i];
    const double fp_i = fp[i];
    Vec3 f_i{};
    for (std::uint32_t j : a.list.neighbors(i)) {
      PairGeom g;
      if (!pair_geometry(a.box, xi, a.x[j], a.cutoff2, g)) continue;
      double v, dvdr, phi, dphidr;
      a.pot.pair(g.r, v, dvdr);
      a.pot.density(g.r, phi, dphidr);
      const double fpair = -(dvdr + (fp_i + fp[j]) * dphidr) / g.r;
      const Vec3 fv = fpair * g.dr;
      f_i += fv;
#pragma omp atomic
      force[j].x -= fv.x;
#pragma omp atomic
      force[j].y -= fv.y;
#pragma omp atomic
      force[j].z -= fv.z;
      energy += v;
      virial += fpair * g.r * g.r;
    }
#pragma omp atomic
    force[i].x += f_i.x;
#pragma omp atomic
    force[i].y += f_i.y;
#pragma omp atomic
    force[i].z += f_i.z;
  }
  sums.pair_energy = energy;
  sums.virial = virial;
}

}  // namespace sdcmd::detail
