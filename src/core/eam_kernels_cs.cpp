// Paper class 1 kernels: synchronization around every scatter update.
//
//  * Critical - the literal strategy the paper benchmarks: the references
//    to the reduction array are enclosed in `#pragma omp critical`, so all
//    threads serialize on one lock for every pair. This is intentionally
//    the naive pattern; its collapse in Fig. 9 is a result, not a bug.
//  * Atomic   - the per-scalar `#pragma omp atomic` refinement; still one
//    RMW bus transaction per array element per pair.
//
// Team kernels: called by every thread of the caller's parallel region
// (see eam_kernels.hpp); the orphaned `omp for` ends each phase with an
// implicit barrier.
#include <omp.h>

#include "core/detail/eam_kernels.hpp"

namespace sdcmd::detail {

void density_critical_team(const EamArgs& a, std::span<double> rho) {
  const std::size_t n = a.x.size();
  if (a.soa.active()) {
    double* __restrict out = rho.data();
#pragma omp for schedule(static)
    for (std::size_t i = 0; i < n; ++i) {
      const double rho_i =
          soa_density_atom(a.soa, a.cutoff2, i,
                           [out](std::uint32_t j, double phi) {
#pragma omp critical(sdcmd_density)
                             out[j] += phi;
                           });
#pragma omp critical(sdcmd_density)
      out[i] += rho_i;
    }
    return;
  }
  const auto& index = a.list.neigh_index();
#pragma omp for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 xi = a.x[i];
    const auto nbrs = a.list.neighbors(i);
    const std::size_t base = index[i];
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const std::uint32_t j = nbrs[k];
      double phi;
      if (!density_pair(a, xi, j, base + k, phi)) continue;
#pragma omp critical(sdcmd_density)
      {
        rho[i] += phi;
        rho[j] += phi;
      }
    }
  }
}

void density_atomic_team(const EamArgs& a, std::span<double> rho) {
  const std::size_t n = a.x.size();
  if (a.soa.active()) {
    double* __restrict out = rho.data();
#pragma omp for schedule(static)
    for (std::size_t i = 0; i < n; ++i) {
      const double rho_i =
          soa_density_atom(a.soa, a.cutoff2, i,
                           [out](std::uint32_t j, double phi) {
#pragma omp atomic
                             out[j] += phi;
                           });
#pragma omp atomic
      out[i] += rho_i;
    }
    return;
  }
  const auto& index = a.list.neigh_index();
#pragma omp for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 xi = a.x[i];
    const auto nbrs = a.list.neighbors(i);
    const std::size_t base = index[i];
    double rho_i = 0.0;
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const std::uint32_t j = nbrs[k];
      double phi;
      if (!density_pair(a, xi, j, base + k, phi)) continue;
      rho_i += phi;  // rho[i] is only *scattered to* via the j side below,
                     // so the i-side accumulates privately
#pragma omp atomic
      rho[j] += phi;
    }
#pragma omp atomic
    rho[i] += rho_i;
  }
}

void force_critical_team(const EamArgs& a, std::span<const double> fp,
                         std::span<Vec3> force, double* energy_parts,
                         double* virial_parts) {
  const std::size_t n = a.x.size();
  double energy = 0.0;
  double virial = 0.0;
  if (a.soa.active()) {
    Vec3* __restrict out = force.data();
#pragma omp for schedule(static)
    for (std::size_t i = 0; i < n; ++i) {
      SoaForceOut o;
      soa_force_atom(a.soa, fp.data(), fp[i], i, o,
                     [out](std::uint32_t j, double fx, double fy, double fz) {
#pragma omp critical(sdcmd_force)
                       {
                         out[j].x -= fx;
                         out[j].y -= fy;
                         out[j].z -= fz;
                       }
                     });
      // Atom i is scattered to by other threads' j sides too.
#pragma omp critical(sdcmd_force)
      {
        out[i].x += o.fx;
        out[i].y += o.fy;
        out[i].z += o.fz;
      }
      energy += o.energy;
      virial += o.virial;
    }
    const int tid = omp_get_thread_num();
    energy_parts[tid] = energy;
    virial_parts[tid] = virial;
    return;
  }
  const auto& index = a.list.neigh_index();
#pragma omp for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 xi = a.x[i];
    const double fp_i = fp[i];
    const auto nbrs = a.list.neighbors(i);
    const std::size_t base = index[i];
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const std::uint32_t j = nbrs[k];
      Vec3 fv;
      double v, rvir;
      if (!force_pair(a, xi, j, base + k, fp_i + fp[j], fv, v, rvir)) {
        continue;
      }
#pragma omp critical(sdcmd_force)
      {
        force[i] += fv;
        force[j] -= fv;
      }
      energy += v;
      virial += rvir;
    }
  }
  const int tid = omp_get_thread_num();
  energy_parts[tid] = energy;
  virial_parts[tid] = virial;
}

void force_atomic_team(const EamArgs& a, std::span<const double> fp,
                       std::span<Vec3> force, double* energy_parts,
                       double* virial_parts) {
  const std::size_t n = a.x.size();
  double energy = 0.0;
  double virial = 0.0;
  if (a.soa.active()) {
    Vec3* __restrict out = force.data();
#pragma omp for schedule(static)
    for (std::size_t i = 0; i < n; ++i) {
      SoaForceOut o;
      soa_force_atom(a.soa, fp.data(), fp[i], i, o,
                     [out](std::uint32_t j, double fx, double fy, double fz) {
#pragma omp atomic
                       out[j].x -= fx;
#pragma omp atomic
                       out[j].y -= fy;
#pragma omp atomic
                       out[j].z -= fz;
                     });
#pragma omp atomic
      out[i].x += o.fx;
#pragma omp atomic
      out[i].y += o.fy;
#pragma omp atomic
      out[i].z += o.fz;
      energy += o.energy;
      virial += o.virial;
    }
    const int tid = omp_get_thread_num();
    energy_parts[tid] = energy;
    virial_parts[tid] = virial;
    return;
  }
  const auto& index = a.list.neigh_index();
#pragma omp for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 xi = a.x[i];
    const double fp_i = fp[i];
    const auto nbrs = a.list.neighbors(i);
    const std::size_t base = index[i];
    Vec3 f_i{};
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const std::uint32_t j = nbrs[k];
      Vec3 fv;
      double v, rvir;
      if (!force_pair(a, xi, j, base + k, fp_i + fp[j], fv, v, rvir)) {
        continue;
      }
      f_i += fv;
#pragma omp atomic
      force[j].x -= fv.x;
#pragma omp atomic
      force[j].y -= fv.y;
#pragma omp atomic
      force[j].z -= fv.z;
      energy += v;
      virial += rvir;
    }
#pragma omp atomic
    force[i].x += f_i.x;
#pragma omp atomic
    force[i].y += f_i.y;
#pragma omp atomic
    force[i].z += f_i.z;
  }
  const int tid = omp_get_thread_num();
  energy_parts[tid] = energy;
  virial_parts[tid] = virial;
}

}  // namespace sdcmd::detail
