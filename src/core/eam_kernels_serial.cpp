// Serial reference kernels plus the shared embedding phase.
//
// These are the paper's Figs. 1-2 loops: the outer loop walks atoms, the
// inner loop walks the CSR half neighbor list, and both rho[j] and force[j]
// receive symmetric scatter updates (the Section II.D "other optimizing
// methods": density counted for both partners of a pair, Newton's third law
// in the force loop).
#include <omp.h>

#include "common/timer.hpp"
#include "core/detail/eam_kernels.hpp"

namespace sdcmd::detail {

void density_serial(const EamArgs& a, std::span<double> rho) {
  const std::size_t n = a.x.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 xi = a.x[i];
    double rho_i = 0.0;
    for (std::uint32_t j : a.list.neighbors(i)) {
      PairGeom g;
      if (!pair_geometry(a.box, xi, a.x[j], a.cutoff2, g)) continue;
      double phi, dphidr;
      a.pot.density(g.r, phi, dphidr);
      // Single species: phi_ij == phi_ji, one evaluation feeds both atoms.
      rho_i += phi;
      rho[j] += phi;
    }
    rho[i] += rho_i;
  }
}

double embed_phase(const EamPotential& pot, std::span<const double> rho,
                   std::span<double> fp, bool parallel,
                   obs::SdcSweepProfiler* profiler) {
  const std::size_t n = rho.size();
  double energy = 0.0;
  obs::SdcSweepProfiler* prof =
      (profiler != nullptr && profiler->enabled()) ? profiler : nullptr;
  if (parallel && prof != nullptr) {
    // Same loop as below with per-thread work/wait spans recorded (see the
    // SDC kernels for the nowait + explicit-barrier pattern).
#pragma omp parallel reduction(+ : energy)
    {
      const int tid = omp_get_thread_num();
      obs::SweepSample sample;
      sample.start = wall_time();
#pragma omp for schedule(static) nowait
      for (std::size_t i = 0; i < n; ++i) {
        double f, dfdrho;
        pot.embed(rho[i], f, dfdrho);
        fp[i] = dfdrho;
        energy += f;
      }
      const double t_work = wall_time();
#pragma omp barrier
      sample.work = t_work - sample.start;
      sample.wait = wall_time() - t_work;
      sample.valid = true;
      prof->record(kProfPhaseEmbed, 0, tid, sample);
    }
  } else if (parallel) {
#pragma omp parallel for schedule(static) reduction(+ : energy)
    for (std::size_t i = 0; i < n; ++i) {
      double f, dfdrho;
      pot.embed(rho[i], f, dfdrho);
      fp[i] = dfdrho;
      energy += f;
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      double f, dfdrho;
      pot.embed(rho[i], f, dfdrho);
      fp[i] = dfdrho;
      energy += f;
    }
  }
  return energy;
}

void force_serial(const EamArgs& a, std::span<const double> fp,
                  std::span<Vec3> force, ForceSums& sums) {
  const std::size_t n = a.x.size();
  double energy = 0.0;
  double virial = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 xi = a.x[i];
    const double fp_i = fp[i];
    Vec3 f_i{};
    for (std::uint32_t j : a.list.neighbors(i)) {
      PairGeom g;
      if (!pair_geometry(a.box, xi, a.x[j], a.cutoff2, g)) continue;
      double v, dvdr, phi, dphidr;
      a.pot.pair(g.r, v, dvdr);
      a.pot.density(g.r, phi, dphidr);
      // dE/dr_ij = V'(r) + (F'(rho_i) + F'(rho_j)) phi'(r)   [paper eq. (2)]
      const double fpair = -(dvdr + (fp_i + fp[j]) * dphidr) / g.r;
      const Vec3 fv = fpair * g.dr;
      f_i += fv;
      force[j] -= fv;  // Newton's third law (Section II.D, method 2)
      energy += v;
      virial += fpair * g.r * g.r;
    }
    force[i] += f_i;
  }
  sums.pair_energy = energy;
  sums.virial = virial;
}

}  // namespace sdcmd::detail
