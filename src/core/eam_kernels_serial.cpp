// Serial reference kernels plus the shared embedding phase.
//
// These are the paper's Figs. 1-2 loops: the outer loop walks atoms, the
// inner loop walks the CSR half neighbor list, and both rho[j] and force[j]
// receive symmetric scatter updates (the Section II.D "other optimizing
// methods": density counted for both partners of a pair, Newton's third law
// in the force loop). The per-pair work lives in density_pair/force_pair
// (eam_kernels.hpp) so the serial kernels exercise the same cache and
// devirtualized-spline paths as the parallel strategies.
#include <omp.h>

#include "common/timer.hpp"
#include "core/detail/eam_kernels.hpp"

namespace sdcmd::detail {

void density_serial(const EamArgs& a, std::span<double> rho) {
  const std::size_t n = a.x.size();
  if (a.soa.active()) {
    double* __restrict out = rho.data();
    for (std::size_t i = 0; i < n; ++i) {
      out[i] += soa_density_atom(
          a.soa, a.cutoff2, i,
          [out](std::uint32_t j, double phi) { out[j] += phi; });
    }
    return;
  }
  const auto& index = a.list.neigh_index();
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 xi = a.x[i];
    const auto nbrs = a.list.neighbors(i);
    const std::size_t base = index[i];
    double rho_i = 0.0;
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      double phi;
      if (!density_pair(a, xi, nbrs[k], base + k, phi)) continue;
      // Single species: phi_ij == phi_ji, one evaluation feeds both atoms.
      rho_i += phi;
      rho[nbrs[k]] += phi;
    }
    rho[i] += rho_i;
  }
}

double embed_serial(const EamArgs& a, std::span<const double> rho,
                    std::span<double> fp) {
  const std::size_t n = rho.size();
  if (a.soa.active()) {
    return soa_embed_range(a.soa.embed, rho.data(), fp.data(), 0, n);
  }
  double energy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double f, dfdrho;
    eval_embed(a, rho[i], f, dfdrho);
    fp[i] = dfdrho;
    energy += f;
  }
  return energy;
}

void embed_team(const EamArgs& a, std::span<const double> rho,
                std::span<double> fp, double* energy_parts) {
  const std::size_t n = rho.size();
  obs::SdcSweepProfiler* prof =
      (a.profiler != nullptr && a.profiler->enabled()) ? a.profiler : nullptr;
  const int tid = omp_get_thread_num();
  double energy = 0.0;
  if (a.soa.active()) {
    // SIMD embedding: distribute kSoaChunk-atom blocks over the team and
    // run the packed-spline simd loop per block. (A plain `omp for simd
    // reduction` cannot be used here: `energy` is thread-local in this
    // orphaned context, so a worksharing reduction over it is
    // non-conforming.)
    const std::size_t blocks = (n + kSoaChunk - 1) / kSoaChunk;
    const double* r = rho.data();
    double* d = fp.data();
    if (prof != nullptr) {
      obs::SweepSample sample;
      sample.start = wall_time();
#pragma omp for schedule(static) nowait
      for (std::size_t b = 0; b < blocks; ++b) {
        const std::size_t begin = b * kSoaChunk;
        energy += soa_embed_range(a.soa.embed, r, d, begin,
                                  std::min(n, begin + kSoaChunk));
      }
      const double t_work = wall_time();
#pragma omp barrier
      sample.work = t_work - sample.start;
      sample.wait = wall_time() - t_work;
      sample.valid = true;
      prof->record(kProfPhaseEmbed, 0, tid, sample);
    } else {
#pragma omp for schedule(static)
      for (std::size_t b = 0; b < blocks; ++b) {
        const std::size_t begin = b * kSoaChunk;
        energy += soa_embed_range(a.soa.embed, r, d, begin,
                                  std::min(n, begin + kSoaChunk));
      }
    }
    energy_parts[tid] = energy;
    return;
  }
  if (prof != nullptr) {
    // Same loop as below with per-thread work/wait spans recorded (see the
    // SDC kernels for the nowait + explicit-barrier pattern).
    obs::SweepSample sample;
    sample.start = wall_time();
#pragma omp for schedule(static) nowait
    for (std::size_t i = 0; i < n; ++i) {
      double f, dfdrho;
      eval_embed(a, rho[i], f, dfdrho);
      fp[i] = dfdrho;
      energy += f;
    }
    const double t_work = wall_time();
#pragma omp barrier
    sample.work = t_work - sample.start;
    sample.wait = wall_time() - t_work;
    sample.valid = true;
    prof->record(kProfPhaseEmbed, 0, tid, sample);
  } else {
#pragma omp for schedule(static)
    for (std::size_t i = 0; i < n; ++i) {
      double f, dfdrho;
      eval_embed(a, rho[i], f, dfdrho);
      fp[i] = dfdrho;
      energy += f;
    }
  }
  energy_parts[tid] = energy;
}

double embed_phase(const EamPotential& pot, std::span<const double> rho,
                   std::span<double> fp, bool parallel) {
  const std::size_t n = rho.size();
  double energy = 0.0;
  if (parallel) {
#pragma omp parallel for schedule(static) reduction(+ : energy)
    for (std::size_t i = 0; i < n; ++i) {
      double f, dfdrho;
      pot.embed(rho[i], f, dfdrho);
      fp[i] = dfdrho;
      energy += f;
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      double f, dfdrho;
      pot.embed(rho[i], f, dfdrho);
      fp[i] = dfdrho;
      energy += f;
    }
  }
  return energy;
}

void force_serial(const EamArgs& a, std::span<const double> fp,
                  std::span<Vec3> force, ForceSums& sums) {
  const std::size_t n = a.x.size();
  if (a.soa.active()) {
    Vec3* __restrict out = force.data();
    double energy = 0.0;
    double virial = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      SoaForceOut o;
      soa_force_atom(a.soa, fp.data(), fp[i], i, o,
                     [out](std::uint32_t j, double fx, double fy, double fz) {
                       out[j].x -= fx;  // Newton's third law
                       out[j].y -= fy;
                       out[j].z -= fz;
                     });
      out[i].x += o.fx;
      out[i].y += o.fy;
      out[i].z += o.fz;
      energy += o.energy;
      virial += o.virial;
    }
    sums.pair_energy = energy;
    sums.virial = virial;
    return;
  }
  const auto& index = a.list.neigh_index();
  double energy = 0.0;
  double virial = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 xi = a.x[i];
    const double fp_i = fp[i];
    const auto nbrs = a.list.neighbors(i);
    const std::size_t base = index[i];
    Vec3 f_i{};
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const std::uint32_t j = nbrs[k];
      Vec3 fv;
      double v, rvir;
      if (!force_pair(a, xi, j, base + k, fp_i + fp[j], fv, v, rvir)) {
        continue;
      }
      f_i += fv;
      force[j] -= fv;  // Newton's third law (Section II.D, method 2)
      energy += v;
      virial += rvir;
    }
    force[i] += f_i;
  }
  sums.pair_energy = energy;
  sums.virial = virial;
}

}  // namespace sdcmd::detail
