// The irregular-reduction parallelization strategies the paper compares
// (Section I taxonomy + the SDC contribution).
#pragma once

#include <string>

#include "neighbor/neighbor_list.hpp"

namespace sdcmd {

enum class ReductionStrategy {
  /// Single-threaded reference kernel (speedup baseline).
  Serial,
  /// Paper class 1: every scatter update inside `#pragma omp critical`.
  Critical,
  /// Modern refinement of class 1: per-scalar `#pragma omp atomic`.
  Atomic,
  /// Fine-grained class 1: scatter targets guarded by striped locks
  /// (locks[j % stripes]); contention shrinks with the stripe count.
  LockStriped,
  /// Paper class 2 (SAP): per-thread private copies of rho[] / force[],
  /// merged after the loop. Memory grows linearly with thread count.
  ArrayPrivatization,
  /// Paper class 5 (RC): full neighbor lists, gather-only kernels, about
  /// twice the floating-point work but no write conflicts.
  RedundantComputation,
  /// The paper's contribution: spatial decomposition coloring. Race-free
  /// scatter via color-wise sweeps separated by implicit barriers.
  Sdc,
  /// Mangiardi/Meyer hybrid cell-task shape (arXiv:1611.00075): cell
  /// blocks become work-stealing tasks with per-block locks taken only on
  /// actual cross-block conflict, so threads never idle at a color
  /// boundary. Wins on inhomogeneous systems where SDC's even split
  /// load-balances badly.
  CellTask,
};

/// All strategies, in the order benches report them.
inline constexpr ReductionStrategy kAllStrategies[] = {
    ReductionStrategy::Serial,
    ReductionStrategy::Critical,
    ReductionStrategy::Atomic,
    ReductionStrategy::LockStriped,
    ReductionStrategy::ArrayPrivatization,
    ReductionStrategy::RedundantComputation,
    ReductionStrategy::Sdc,
    ReductionStrategy::CellTask,
};

std::string to_string(ReductionStrategy s);

/// Parse "serial" / "critical" / "atomic" / "locks" / "sap" / "rc" /
/// "sdc" / "celltask" (also accepts the long names). Throws
/// PreconditionError on junk.
ReductionStrategy parse_strategy(const std::string& name);

/// The neighbor-list flavor a strategy's kernels need: Full for
/// RedundantComputation, Half for everything else.
NeighborMode required_mode(ReductionStrategy s);

/// True for strategies whose scatter phase runs multi-threaded.
bool is_parallel(ReductionStrategy s);

}  // namespace sdcmd
