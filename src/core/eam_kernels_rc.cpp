// Paper class 5: Redundant Computations (RC).
//
// With a *full* neighbor list every pair appears under both of its atoms, so
// each atom's density and force are pure gathers: no thread ever writes
// another atom's slot and no synchronization is needed. The price is that
// every pair interaction is evaluated twice ("double computations") and the
// neighbor list itself is twice as large - the trade the paper quantifies
// in Fig. 9 (near-linear scaling, ~1.7x slower than SDC at scale).
//
// Team kernels: orphaned OpenMP (see eam_kernels.hpp). RC keeps its gather
// form and ignores the pair cache: each pair's slot differs between its two
// appearances, so caching would double the footprint for no reuse. The
// caller asserts Full-list mode before opening the parallel region.
#include <omp.h>

#include "core/detail/eam_kernels.hpp"

namespace sdcmd::detail {

void density_rc_team(const EamArgs& a, std::span<double> rho) {
  const std::size_t n = a.x.size();
  if (a.soa.active()) {
    // Gather-only: the whole tile sweep is one SIMD reduction per atom.
#pragma omp for schedule(static)
    for (std::size_t i = 0; i < n; ++i) {
      rho[i] = soa_rc_density_atom(a.soa, a.cutoff2, i);
    }
    return;
  }
#pragma omp for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 xi = a.x[i];
    double rho_i = 0.0;
    for (std::uint32_t j : a.list.neighbors(i)) {
      PairGeom g;
      if (!pair_geometry(a.box, xi, a.x[j], a.cutoff2, g)) continue;
      double phi, dphidr;
      eval_density(a, g.r, phi, dphidr);
      rho_i += phi;
    }
    rho[i] = rho_i;
  }
}

void force_rc_team(const EamArgs& a, std::span<const double> fp,
                   std::span<Vec3> force, double* energy_parts,
                   double* virial_parts) {
  const std::size_t n = a.x.size();
  double energy = 0.0;
  double virial = 0.0;
  if (a.soa.active()) {
#pragma omp for schedule(static)
    for (std::size_t i = 0; i < n; ++i) {
      SoaForceOut o;
      soa_rc_force_atom(a.soa, a.cutoff2, fp.data(), fp[i], i, o);
      force[i] = Vec3{o.fx, o.fy, o.fz};
      energy += o.energy;
      virial += o.virial;
    }
    const int tid = omp_get_thread_num();
    energy_parts[tid] = energy;
    virial_parts[tid] = virial;
    return;
  }
#pragma omp for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 xi = a.x[i];
    const double fp_i = fp[i];
    Vec3 f_i{};
    for (std::uint32_t j : a.list.neighbors(i)) {
      PairGeom g;
      if (!pair_geometry(a.box, xi, a.x[j], a.cutoff2, g)) continue;
      double v, dvdr, phi, dphidr;
      eval_pair(a, g.r, v, dvdr);
      eval_density(a, g.r, phi, dphidr);
      const double fpair = -(dvdr + (fp_i + fp[j]) * dphidr) / g.r;
      f_i += fpair * g.dr;
      // Each pair is visited from both sides; halve the pairwise sums so
      // totals match the half-list kernels.
      energy += 0.5 * v;
      virial += 0.5 * fpair * g.r * g.r;
    }
    force[i] = f_i;
  }
  const int tid = omp_get_thread_num();
  energy_parts[tid] = energy;
  virial_parts[tid] = virial;
}

}  // namespace sdcmd::detail
