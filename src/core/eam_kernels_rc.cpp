// Paper class 5: Redundant Computations (RC).
//
// With a *full* neighbor list every pair appears under both of its atoms, so
// each atom's density and force are pure gathers: no thread ever writes
// another atom's slot and no synchronization is needed. The price is that
// every pair interaction is evaluated twice ("double computations") and the
// neighbor list itself is twice as large - the trade the paper quantifies
// in Fig. 9 (near-linear scaling, ~1.7x slower than SDC at scale).
#include <omp.h>

#include "common/error.hpp"
#include "core/detail/eam_kernels.hpp"

namespace sdcmd::detail {

void density_rc(const EamArgs& a, std::span<double> rho) {
  SDCMD_REQUIRE(a.list.mode() == NeighborMode::Full,
                "RC kernels need a full neighbor list");
  const std::size_t n = a.x.size();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 xi = a.x[i];
    double rho_i = 0.0;
    for (std::uint32_t j : a.list.neighbors(i)) {
      PairGeom g;
      if (!pair_geometry(a.box, xi, a.x[j], a.cutoff2, g)) continue;
      double phi, dphidr;
      a.pot.density(g.r, phi, dphidr);
      rho_i += phi;
    }
    rho[i] = rho_i;
  }
}

void force_rc(const EamArgs& a, std::span<const double> fp,
              std::span<Vec3> force, ForceSums& sums) {
  SDCMD_REQUIRE(a.list.mode() == NeighborMode::Full,
                "RC kernels need a full neighbor list");
  const std::size_t n = a.x.size();
  double energy = 0.0;
  double virial = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : energy, virial)
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 xi = a.x[i];
    const double fp_i = fp[i];
    Vec3 f_i{};
    for (std::uint32_t j : a.list.neighbors(i)) {
      PairGeom g;
      if (!pair_geometry(a.box, xi, a.x[j], a.cutoff2, g)) continue;
      double v, dvdr, phi, dphidr;
      a.pot.pair(g.r, v, dvdr);
      a.pot.density(g.r, phi, dphidr);
      const double fpair = -(dvdr + (fp_i + fp[j]) * dphidr) / g.r;
      f_i += fpair * g.dr;
      // Each pair is visited from both sides; halve the pairwise sums so
      // totals match the half-list kernels.
      energy += 0.5 * v;
      virial += 0.5 * fpair * g.r * g.r;
    }
    force[i] = f_i;
  }
  sums.pair_energy = energy;
  sums.virial = virial;
}

}  // namespace sdcmd::detail
