// Three-phase EAM force evaluation with pluggable irregular-reduction
// strategies (the paper's Section II.C).
//
// compute() runs the paper's phases in order:
//   1. density   : rho_i = sum_j phi(r_ij)            [irregular reduction]
//   2. embedding : F(rho_i), fp_i = dF/drho, E_embed  [embarrassingly parallel]
//   3. force     : f_i -= (V' + (fp_i + fp_j) phi') r_ij / r
//                                                     [irregular reduction]
// Phases 1 and 3 scatter through the half neighbor list (except under
// RedundantComputation, which gathers through a full list), and each runs
// under the strategy chosen at construction. Per-phase wall time and exact
// work counters are recorded so benches can report both the paper's timings
// and the mechanism-level evidence (RC doing 2x the pair visits, SAP's
// thread-linear memory, ...).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "common/timer.hpp"
#include "common/vec3.hpp"
#include "core/cell_task_schedule.hpp"
#include "core/sdc_schedule.hpp"
#include "core/strategy.hpp"
#include "neighbor/neighbor_list.hpp"
#include "obs/perf_counters.hpp"
#include "obs/sweep_profile.hpp"
#include "potential/potential.hpp"

namespace sdcmd {

struct EamForceResult {
  double pair_energy = 0.0;       ///< sum of V over pairs
  double embedding_energy = 0.0;  ///< sum of F(rho_i)
  double virial = 0.0;            ///< sum over pairs of r_ij . f_ij

  double total_energy() const { return pair_energy + embedding_energy; }
};

/// Exact (not sampled) work accounting for one compute() call.
struct EamKernelStats {
  std::size_t density_pair_visits = 0;  ///< neighbor-list entries walked
  std::size_t force_pair_visits = 0;
  std::size_t scatter_updates = 0;      ///< writes to rho[j] / force[j]
  std::size_t color_sweeps = 0;         ///< SDC barriers taken
  std::size_t private_array_bytes = 0;  ///< SAP replication footprint
  std::size_t cache_store_slots = 0;    ///< pair-cache slots written (phase 1)
  std::size_t cache_read_slots = 0;     ///< pair-cache slots read (phase 3)
  std::size_t pair_cache_bytes = 0;     ///< high-water pair-cache footprint
  std::size_t soa_steps = 0;            ///< compute() calls on the SoA path
  /// Tile-padding overhead of the SoA path at the last compute():
  /// padded slots / real pairs - 1 (0 when the path is inactive).
  double soa_pad_fraction = 0.0;
  // CellTask work-stealing accounting (0 unless the strategy is CellTask).
  std::size_t task_spawned = 0;         ///< block tasks run (both phases)
  std::size_t task_steals = 0;          ///< of those, claimed from a foreign queue
  std::size_t task_max_queue_depth = 0; ///< longest initial per-thread queue
  /// Per-thread busy fraction over the two scatter phases at the last
  /// compute(): each thread's kernel seconds divided by the slowest
  /// thread's (1.0 = perfectly balanced; 0 when the shape is inactive).
  double task_busy_min = 0.0;
  double task_busy_mean = 0.0;
};

struct EamForceConfig {
  ReductionStrategy strategy = ReductionStrategy::Sdc;
  SdcConfig sdc;                 ///< used when strategy == Sdc
  bool dynamic_schedule = false; ///< omp dynamic instead of static chunks
  /// Cache per-pair geometry + density-spline derivative during the density
  /// phase and reuse it in the force phase (~40 B/pair; see
  /// docs/performance.md). Ignored under RedundantComputation, whose
  /// gather kernels visit each pair from both sides.
  bool use_pair_cache = true;
  /// Evaluate tabulated potentials through flattened spline tables instead
  /// of the virtual EamPotential interface. No effect on analytic
  /// potentials (they expose no tables).
  bool use_spline_tables = true;
  /// SIMD structure-of-arrays fast path: positions mirrored into separate
  /// x/y/z arrays, neighbor tiles padded to the vector width, inner loops
  /// vectorized over packed spline tables (see docs/performance.md).
  /// Engages only when the potential is tabulated, the neighbor list was
  /// built with pad_width == neighbor_pad_width(), and the strategy's
  /// kernels profit from it (RedundantComputation's full-list gathers;
  /// half-list strategies additionally need soa_half_lists). false pins
  /// the scalar reference path everywhere.
  bool use_soa_path = true;
  /// Also engage the SoA path for half-list scatter strategies (needs the
  /// pair cache). Off by default: measured on AVX-512, the ~8-entry half
  /// sublists pad ~45% and the Newton's-third-law scatter must stay
  /// scalar, so the vector loops lose to the lean scalar replay there
  /// (see docs/performance.md "when the scalar path wins"). Kept for A/B
  /// benches, the equivalence tests, and wider-vector hardware.
  bool soa_half_lists = false;
};

class LockPool;

class EamForceComputer {
 public:
  EamForceComputer(const EamPotential& potential, EamForceConfig config);
  ~EamForceComputer();

  EamForceComputer(const EamForceComputer&) = delete;
  EamForceComputer& operator=(const EamForceComputer&) = delete;

  /// Build the strategy's spatial schedule for `box`: the SDC
  /// decomposition/coloring under Sdc, the cell-task block grid + per-block
  /// lock pool under CellTask; a no-op otherwise. Required before compute()
  /// for both scheduled strategies. `interaction_range` must be >=
  /// potential cutoff + neighbor skin.
  void attach_schedule(const Box& box, double interaction_range);

  /// Re-partition atoms over subdomains/blocks; call after every
  /// neighbor-list rebuild (the paper rebuilds SDC state exactly then).
  /// No-op for unscheduled strategies.
  void on_neighbor_rebuild(std::span<const Vec3> positions);

  /// Evaluate densities, embedding and forces. `list.mode()` must match
  /// required_mode(strategy). Outputs:
  ///   rho[i]   - electron density (phase 1)
  ///   fp[i]    - dF/drho at rho[i] (phase 2)
  ///   force[i] - total EAM force (phase 3; overwritten, not accumulated)
  EamForceResult compute(const Box& box, std::span<const Vec3> positions,
                         const NeighborList& list, std::span<double> rho,
                         std::span<double> fp, std::span<Vec3> force);

  /// Hot-swap the reduction strategy mid-run (the StrategyGovernor's
  /// degradation ladder). Allocates the new strategy's workspace (SAP
  /// replicas, lock pool) on demand and drops a stale SDC schedule /
  /// cell-task grid when leaving Sdc / CellTask; the pair cache and fused
  /// one-region pipeline carry over untouched. The caller must re-run
  /// attach_schedule + on_neighbor_rebuild before the next compute() when
  /// swapping TO Sdc or CellTask. No-op when `strategy` is already active.
  /// Throws PreconditionError on a swap that changes the required
  /// neighbor-list mode (to or from RedundantComputation) - the ladder
  /// never does that.
  void set_strategy(ReductionStrategy strategy);

  const EamForceConfig& config() const { return config_; }
  const EamPotential& potential() const { return potential_; }

  /// Tile pad width the neighbor list must be built with for compute() to
  /// take the SoA fast path: the SIMD vector width when this configuration
  /// is eligible (tabulated potential + spline tables + pair cache or RC),
  /// 0 when the scalar path would run anyway. Stable across governor
  /// hot-swaps (the ladder never crosses the RC mode boundary).
  int neighbor_pad_width() const;

  /// Wall time per phase ("density", "embed", "force"), cumulative.
  PhaseTimers& timers() { return timers_; }
  const EamKernelStats& stats() const { return stats_; }
  void reset_instrumentation();

  /// Per-thread x per-color span profiler for the SDC sweep (and the embed
  /// phase). Disabled by default; enable with
  /// `sweep_profiler().set_enabled(true)` - compute() then shapes it to the
  /// current schedule/thread count, clocks every (phase, color, thread)
  /// span, and leaves the step's samples readable until the next compute().
  obs::SdcSweepProfiler& sweep_profiler() { return profiler_; }
  const obs::SdcSweepProfiler& sweep_profiler() const { return profiler_; }

  /// Per-thread hardware counters (perf_event_open) over the same three
  /// phase boundaries: each thread reads its own counter group at the
  /// barriers that already end the density/embed/force kernels, so the
  /// kernels themselves stay untouched. `set_enabled(true)` is refused when
  /// the syscall is unavailable (non-Linux, perf_event_paranoid) and the
  /// profiler degrades to a no-op costing one branch per phase.
  obs::PerfPhaseProfiler& hw_profiler() { return hw_profiler_; }
  const obs::PerfPhaseProfiler& hw_profiler() const { return hw_profiler_; }

  /// The SDC schedule, or nullptr for non-SDC strategies.
  const SdcSchedule* schedule() const { return schedule_.get(); }

  /// The cell-task block grid, or nullptr for non-CellTask strategies.
  const CellTaskSchedule* task_schedule() const { return task_sched_.get(); }

  /// Single-threaded reference evaluation into caller-owned scratch, used
  /// by the governor's periodic shadow validation: same spline tables as
  /// compute(), no pair cache, no timers/stats/profiler mutation. `list`
  /// must be a half list (every ladder strategy's mode, so the active
  /// list can be shared).
  EamForceResult compute_serial_reference(const Box& box,
                                          std::span<const Vec3> positions,
                                          const NeighborList& list,
                                          std::span<double> rho,
                                          std::span<double> fp,
                                          std::span<Vec3> force) const;

 private:
  struct SapWorkspace;
  struct PairCache;
  struct SoaWorkspace;

  const EamPotential& potential_;
  EamForceConfig config_;
  std::unique_ptr<SdcSchedule> schedule_;
  std::unique_ptr<CellTaskSchedule> task_sched_;
  std::unique_ptr<CellTaskRuntime> task_rt_;
  std::unique_ptr<LockPool> task_locks_;  ///< one lock per cell block
  std::unique_ptr<SapWorkspace> sap_;
  std::unique_ptr<LockPool> locks_;
  std::unique_ptr<PairCache> cache_;
  std::unique_ptr<SoaWorkspace> soa_;  ///< allocated on first SoA compute()
  // Per-thread partial sums for the fused parallel pipeline (indexed by
  // omp thread id; summed in thread order for deterministic totals).
  std::vector<double> embed_parts_;
  std::vector<double> energy_parts_;
  std::vector<double> virial_parts_;
  PhaseTimers timers_;
  // Interned PhaseTimers handles: the per-step lap path never compares
  // strings.
  std::size_t t_density_;
  std::size_t t_embed_;
  std::size_t t_force_;
  EamKernelStats stats_;
  obs::SdcSweepProfiler profiler_;
  // Shape the profiler saw at its last configure(); compute() re-runs the
  // (string-building) configure only when this changes.
  int prof_colors_ = -1;
  int prof_threads_ = -1;
  obs::PerfPhaseProfiler hw_profiler_;
  int hw_threads_ = -1;  ///< thread count at the last hw configure()
};

}  // namespace sdcmd
