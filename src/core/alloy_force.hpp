// Three-phase EAM force evaluation for multi-species (alloy) systems.
//
// Same phase structure as EamForceComputer but with species-resolved
// functions: rho_i sums phi_{t_j}(r), the embedding uses F_{t_i}, and the
// pair force carries the asymmetric cross terms
//   dE/dr = V'_{ab} + F'_a(rho_i) phi'_b(r) + F'_b(rho_j) phi'_a(r).
//
// Strategies: Serial and Sdc (the paper's method). The other baselines are
// exercised exhaustively on the single-species engine; duplicating all six
// here would add surface without new insight - SingleSpeciesAlloy +
// equivalence tests pin this engine to the single-species results instead.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "common/timer.hpp"
#include "common/vec3.hpp"
#include "core/sdc_schedule.hpp"
#include "core/strategy.hpp"
#include "neighbor/neighbor_list.hpp"
#include "potential/alloy.hpp"

namespace sdcmd {

struct AlloyForceResult {
  double pair_energy = 0.0;
  double embedding_energy = 0.0;
  double virial = 0.0;
  double total_energy() const { return pair_energy + embedding_energy; }
};

struct AlloyForceConfig {
  ReductionStrategy strategy = ReductionStrategy::Sdc;  ///< Serial or Sdc
  SdcConfig sdc;
};

class AlloyForceComputer {
 public:
  AlloyForceComputer(const AlloyEamPotential& potential,
                     AlloyForceConfig config);

  void attach_schedule(const Box& box, double interaction_range);
  void on_neighbor_rebuild(std::span<const Vec3> positions);

  /// `types[i]` must be < potential.species_count(). Half list required.
  AlloyForceResult compute(const Box& box, std::span<const Vec3> positions,
                           std::span<const std::uint8_t> types,
                           const NeighborList& list, std::span<double> rho,
                           std::span<double> fp, std::span<Vec3> force);

  PhaseTimers& timers() { return timers_; }
  const SdcSchedule* schedule() const { return schedule_.get(); }
  const AlloyEamPotential& potential() const { return potential_; }

 private:
  const AlloyEamPotential& potential_;
  AlloyForceConfig config_;
  std::unique_ptr<SdcSchedule> schedule_;
  PhaseTimers timers_;
  std::size_t t_density_;  ///< interned timer handles, see PhaseTimers
  std::size_t t_embed_;
  std::size_t t_force_;
};

}  // namespace sdcmd
