// Built only under SDCMD_VECTOR_REPORT (see src/core/CMakeLists.txt).
//
// Instantiates the SoA force-replay loop - the PairCache replay that the
// whole padded-tile layout exists to vectorize - in isolation, so every
// "loop vectorized" report line pointing into eam_soa.hpp from this
// translation unit is attributable to that loop and its scatter drain.
// The CI vectorization smoke builds exactly this object and fails when
// the compiler stops reporting the loop as vectorized.
#include <cstddef>
#include <cstdint>

#include "core/detail/eam_soa.hpp"

namespace sdcmd::detail {

void soa_vectorization_probe(const SoaView& s, const double* fp, double fp_i,
                             std::size_t i, SoaForceOut& out, double* sink) {
  soa_force_atom(s, fp, fp_i, i, out,
                 [sink](std::uint32_t j, double fx, double fy, double fz) {
                   sink[j] += fx + fy + fz;
                 });
}

}  // namespace sdcmd::detail
