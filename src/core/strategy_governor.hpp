// StrategyGovernor: owns the reduction-strategy choice for the lifetime of
// a run.
//
// The SDC coloring is only race-free while every decomposed subdomain edge
// stays >= 2 * interaction range with an even count per dimension - an
// invariant a barostat or box deformer can silently break hundreds of steps
// into an NPT run. Instead of racing (undetected corruption) or dying with
// InfeasibleError, the governor re-validates feasibility on every box
// change and walks a graceful degradation ladder:
//
//     SDC -> CellTask -> ArrayPrivatization -> LockStriped -> Atomic -> Serial
//
// CellTask (the Mangiardi/Meyer cell-task shape) sits directly below SDC:
// it only needs two cell blocks rather than SDC's even-per-dimension split,
// so most boxes that break SDC still run lock-cheap cell tasks before the
// ladder falls back to SAP's thread-linear replicas.
//
// Demotion is immediate (the active rung's precondition just vanished);
// re-promotion is hysteretic: the box must stay feasible for
// `promote_streak * backoff` consecutive steps, and every demotion
// multiplies the backoff (capped), so a box oscillating around the
// feasibility boundary settles on the safe rung instead of thrashing.
//
// The governor is pure decision logic: it never touches kernels or
// schedules itself. The Simulation driver applies its decisions
// (ForceProvider::set_strategy + geometry rebuild) and feeds box-change /
// per-step / shadow-validation events in. See docs/robustness.md.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "core/cell_task_schedule.hpp"
#include "core/sdc_schedule.hpp"
#include "core/strategy.hpp"
#include "geom/box.hpp"

namespace sdcmd {

struct GovernorConfig {
  /// Top rung of the ladder; must be one of the ladder strategies
  /// (Sdc, CellTask, ArrayPrivatization, LockStriped, Atomic, Serial).
  ReductionStrategy preferred = ReductionStrategy::Sdc;
  /// SDC settings used when probing/running the Sdc rung.
  SdcConfig sdc;
  /// Probe/occupy the CellTask rung. Cleared by drivers whose force
  /// backend implements no cell-task kernels (the pair backend), so the
  /// ladder steps straight from Sdc to ArrayPrivatization there.
  bool enable_celltask = true;
  /// Consecutive feasible steps required before re-promotion (multiplied by
  /// the backoff counter).
  int promote_streak = 20;
  /// Each demotion multiplies the required streak by this factor...
  int backoff_factor = 2;
  /// ...up to this cap.
  int max_backoff = 8;
  /// ArrayPrivatization replication budget in bytes (threads * atoms *
  /// (rho + force) replicas); 0 = unlimited. Over budget, SAP is skipped
  /// and the ladder continues at LockStriped.
  std::size_t max_private_bytes = 0;
  /// Every N steps the driver recomputes rho/forces with the serial
  /// reference kernels and compares against the active strategy
  /// (demote + guard.strategy_race_suspect on mismatch); 0 = off.
  long shadow_check_every = 0;
  /// Max absolute rho / force-component deviation the shadow pass accepts.
  double shadow_tolerance = 1e-12;
};

enum class GovernorEvent { None, Demotion, Promotion };

struct GovernorDecision {
  ReductionStrategy strategy = ReductionStrategy::Serial;
  GovernorEvent event = GovernorEvent::None;
  /// Human-readable cause ("2-D SDC infeasible: ...") for logs and trace
  /// markers; empty when nothing happened.
  std::string reason;

  bool changed() const { return event != GovernorEvent::None; }
};

/// Snapshot of the governor's mutable state, so a checkpoint restart can
/// resume mid-demotion instead of blindly re-selecting the preferred rung.
struct GovernorState {
  ReductionStrategy active = ReductionStrategy::Serial;
  long demotions = 0;
  long promotions = 0;
  long race_suspects = 0;
  int feasible_streak = 0;
  int backoff = 1;
};

class StrategyGovernor {
 public:
  /// The degradation ladder, best rung first.
  static constexpr ReductionStrategy kLadder[] = {
      ReductionStrategy::Sdc,
      ReductionStrategy::CellTask,
      ReductionStrategy::ArrayPrivatization,
      ReductionStrategy::LockStriped,
      ReductionStrategy::Atomic,
      ReductionStrategy::Serial,
  };

  /// Throws PreconditionError when `config.preferred` is not a ladder rung
  /// or the hysteresis knobs are out of range.
  explicit StrategyGovernor(GovernorConfig config);

  /// Initial selection: the best feasible rung at or below `preferred`.
  /// After restore_state(), validates the restored rung instead (keeping it
  /// even when a better rung is feasible - promotion stays hysteretic
  /// across restarts) and demotes if the restored rung went infeasible.
  GovernorDecision setup(const Box& box, double interaction_range,
                         int threads, std::size_t atom_count);

  /// Re-validate after any box change (barostat step, deform event,
  /// checkpoint restore, skin growth). Demotes immediately when the active
  /// rung is no longer feasible; never promotes (that is on_step's job).
  GovernorDecision on_box_change(const Box& box, double interaction_range,
                                 int threads, std::size_t atom_count);

  /// Per-step hysteresis tick: counts consecutive steps on which a better
  /// rung is feasible and promotes once the streak reaches
  /// promote_streak * backoff.
  GovernorDecision on_step(const Box& box, double interaction_range,
                           int threads, std::size_t atom_count);

  /// Shadow validation caught the active strategy disagreeing with the
  /// serial reference (or race_check found overlapping footprints): demote
  /// one rung regardless of what the geometry claims.
  GovernorDecision on_shadow_mismatch(const std::string& detail);

  /// Non-throwing feasibility probe for one rung.
  bool rung_feasible(ReductionStrategy rung, const Box& box,
                     double interaction_range, int threads,
                     std::size_t atom_count) const;

  ReductionStrategy active() const { return state_.active; }
  const GovernorConfig& config() const { return config_; }
  const GovernorState& state() const { return state_; }
  void restore_state(const GovernorState& state);

  long demotions() const { return state_.demotions; }
  long promotions() const { return state_.promotions; }
  long race_suspects() const { return state_.race_suspects; }
  /// Feasible steps currently required before the next promotion.
  int required_streak() const;

  /// Stable numeric encoding for the governor.active_strategy gauge:
  /// serial=0, critical=1, atomic=2, locks=3, sap=4, rc=5, sdc=6,
  /// celltask=7. Codes are append-only: a new rung NEVER renumbers an old
  /// one, so sidecars written by any ladder version decode or are rejected,
  /// never misdecoded.
  static int strategy_code(ReductionStrategy s);

  /// Inverse of strategy_code, for restoring a checkpointed rung from the
  /// run_state.v1 sidecar. Throws PreconditionError on an unknown code.
  static ReductionStrategy strategy_from_code(int code);

  /// Non-throwing inverse of strategy_code: nullopt for unknown /
  /// out-of-range codes, e.g. a sidecar written by a NEWER ladder whose
  /// rung this build does not know. Callers should warn and fall back to
  /// fresh setup instead of guessing.
  static std::optional<ReductionStrategy> try_strategy_from_code(int code);

  /// True when `s` is a rung of the degradation ladder (a strategy a
  /// sidecar can legitimately carry as the governor's active rung).
  static bool on_ladder(ReductionStrategy s) { return ladder_index(s) >= 0; }

 private:
  /// Ladder index of `s`, or -1 when `s` is not on the ladder.
  static int ladder_index(ReductionStrategy s);

  /// Best feasible rung at or below the preferred one (Serial is always
  /// feasible, so this never fails).
  ReductionStrategy best_feasible(const Box& box, double interaction_range,
                                  int threads, std::size_t atom_count) const;

  GovernorDecision demote_to(ReductionStrategy rung, std::string reason);

  GovernorConfig config_;
  GovernorState state_;
  bool restored_ = false;  ///< restore_state ran before setup
};

}  // namespace sdcmd
