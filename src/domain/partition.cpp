#include "domain/partition.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace sdcmd {

Partition::Partition(const SpatialDecomposition& decomposition,
                     const Coloring& coloring)
    : decomposition_(decomposition),
      coloring_(coloring),
      color_count_(coloring.color_count()) {
  const std::size_t nsub = decomposition_.subdomain_count();
  subdomain_of_slot_.resize(nsub);
  slot_of_subdomain_.resize(nsub);
  color_start_.assign(static_cast<std::size_t>(color_count_) + 1, 0);

  std::size_t slot = 0;
  for (int c = 0; c < color_count_; ++c) {
    color_start_[c] = slot;
    for (std::size_t s : coloring_.groups()[static_cast<std::size_t>(c)]) {
      subdomain_of_slot_[slot] = s;
      slot_of_subdomain_[s] = slot;
      ++slot;
    }
  }
  color_start_[color_count_] = slot;
  SDCMD_REQUIRE(slot == nsub, "coloring groups must cover every subdomain");
}

void Partition::build(std::span<const Vec3> positions) {
  const std::size_t nsub = subdomain_of_slot_.size();
  const std::size_t n = positions.size();

  std::vector<std::size_t> counts(nsub, 0);
  std::vector<std::uint32_t> slot_of_atom(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t sub = decomposition_.subdomain_of(positions[i]);
    const auto slot = static_cast<std::uint32_t>(slot_of_subdomain_[sub]);
    slot_of_atom[i] = slot;
    ++counts[slot];
  }

  pstart_.assign(nsub + 1, 0);
  for (std::size_t s = 0; s < nsub; ++s) {
    pstart_[s + 1] = pstart_[s] + counts[s];
  }

  partindex_.resize(n);
  std::vector<std::size_t> cursor(pstart_.begin(), pstart_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    partindex_[cursor[slot_of_atom[i]]++] = static_cast<std::uint32_t>(i);
  }
}

std::vector<std::size_t> Partition::atoms_per_color() const {
  std::vector<std::size_t> out(static_cast<std::size_t>(color_count_), 0);
  for (int c = 0; c < color_count_; ++c) {
    out[static_cast<std::size_t>(c)] =
        pstart_[color_end(c)] - pstart_[color_begin(c)];
  }
  return out;
}

double Partition::imbalance() const {
  double worst = 0.0;
  for (int c = 0; c < color_count_; ++c) {
    const std::size_t begin = color_begin(c);
    const std::size_t end = color_end(c);
    if (begin == end) continue;
    const double mean =
        static_cast<double>(pstart_[end] - pstart_[begin]) /
        static_cast<double>(end - begin);
    if (mean == 0.0) continue;
    for (std::size_t s = begin; s < end; ++s) {
      const auto count = static_cast<double>(pstart_[s + 1] - pstart_[s]);
      worst = std::max(worst, std::abs(count - mean) / mean);
    }
  }
  return worst;
}

}  // namespace sdcmd
