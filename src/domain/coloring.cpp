#include "domain/coloring.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace sdcmd {

Coloring::Coloring(const SpatialDecomposition& decomposition)
    : decomposition_(decomposition) {
  const auto& counts = decomposition_.counts();
  color_count_ = 1;
  for (int d = 0; d < 3; ++d) {
    if (counts[d] > 1) color_count_ *= 2;
  }

  const std::size_t n = decomposition_.subdomain_count();
  colors_.resize(n);
  groups_.assign(static_cast<std::size_t>(color_count_), {});
  for (std::size_t s = 0; s < n; ++s) {
    const std::array<int, 3> coords = decomposition_.coords_of(s);
    int color = 0;
    int bit = 0;
    for (int d = 0; d < 3; ++d) {
      if (counts[d] > 1) {
        color |= (coords[d] & 1) << bit;
        ++bit;
      }
    }
    colors_[s] = color;
    groups_[static_cast<std::size_t>(color)].push_back(s);
  }
}

double Coloring::min_same_color_separation() const {
  const auto& counts = decomposition_.counts();
  const Box& box = decomposition_.box();
  double min_sep = std::numeric_limits<double>::infinity();

  // Separation between two same-color subdomains is the sum over decomposed
  // dimensions of the per-dimension gap between their index intervals
  // (Chebyshev-style: the *largest* per-dimension gap already bounds the
  // Euclidean distance from below, so take max over dims, min over pairs).
  const std::size_t n = decomposition_.subdomain_count();
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      if (colors_[a] != colors_[b]) continue;
      const auto ca = decomposition_.coords_of(a);
      const auto cb = decomposition_.coords_of(b);
      double sep = 0.0;
      for (int d = 0; d < 3; ++d) {
        if (counts[d] <= 1) continue;
        const double edge = box.length(d) / counts[d];
        int gap = std::abs(ca[d] - cb[d]);
        if (box.periodic(d)) gap = std::min(gap, counts[d] - gap);
        const double dim_sep = gap > 0 ? (gap - 1) * edge : 0.0;
        sep = std::max(sep, dim_sep);
      }
      min_sep = std::min(min_sep, sep);
    }
  }
  return min_sep;
}

}  // namespace sdcmd
