// Red-black-style coloring of subdomains (the paper's Section II.B, step 2).
//
// Each decomposed dimension contributes one parity bit, so a d-dimensional
// decomposition uses 2^d colors: 2 (1-D), 4 (2-D), 8 (3-D), exactly the
// paper's Figs. 4-6. With even counts per dimension the parity pattern
// closes under periodic wrap, and every pair of subdomains that are
// adjacent along a decomposed dimension (sharing a face, edge or corner)
// get different colors.
#pragma once

#include <cstddef>
#include <vector>

#include "domain/decomposition.hpp"

namespace sdcmd {

class Coloring {
 public:
  explicit Coloring(const SpatialDecomposition& decomposition);

  /// 2^dimensionality.
  int color_count() const { return color_count_; }

  /// Color of a subdomain (by flat index).
  int color_of(std::size_t subdomain) const { return colors_[subdomain]; }

  /// Subdomain flat indices grouped by color; each group has equal size
  /// (the paper's "the number of subdomains with each color is equal").
  const std::vector<std::vector<std::size_t>>& groups() const {
    return groups_;
  }

  /// Subdomains per color.
  std::size_t group_size() const {
    return groups_.empty() ? 0 : groups_.front().size();
  }

  /// Smallest distance between the *bounds* of any two same-color
  /// subdomains along decomposed dimensions, under PBC. Race freedom
  /// requires this to be >= 2 * interaction_range; exposed so tests can
  /// verify the invariant explicitly.
  double min_same_color_separation() const;

 private:
  const SpatialDecomposition& decomposition_;
  int color_count_;
  std::vector<int> colors_;
  std::vector<std::vector<std::size_t>> groups_;
};

}  // namespace sdcmd
