// Spatial decomposition of the simulation box into subdomains
// (the paper's Section II.B, step 1).
//
// The paper's two feasibility constraints are enforced here:
//   * along every decomposed dimension the subdomain edge must be at least
//     2 * the interaction range (cutoff + Verlet skin: the scatter-write
//     footprint of a subdomain extends one interaction range beyond it, and
//     same-color subdomains are separated by exactly one subdomain);
//   * the subdomain count along every decomposed dimension must be even,
//     so the alternating 2/4/8-coloring closes under periodic wrap.
//
// Dimensionality selects which axes are decomposed: 1-D splits x, 2-D splits
// x and y, 3-D splits all three, matching the paper's three SDC variants.
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "common/vec3.hpp"
#include "geom/box.hpp"

namespace sdcmd {

class SpatialDecomposition {
 public:
  /// Decompose `box` with explicit per-dimension subdomain counts.
  /// Counts must be 1 on non-decomposed dimensions, and even and >= 2 on
  /// decomposed ones; every decomposed edge must satisfy the 2*range rule.
  /// Throws InfeasibleError when the constraints cannot hold.
  SpatialDecomposition(const Box& box, std::array<int, 3> counts,
                       double interaction_range);

  /// Finest legal decomposition of the requested dimensionality: along each
  /// decomposed axis, the largest even count whose subdomain edge is still
  /// >= 2 * interaction_range. Throws InfeasibleError when even a 2-way
  /// split is impossible (the paper's Table 1 blanks for 1-D SDC on the
  /// small case arise from exactly this failure).
  static SpatialDecomposition finest(const Box& box, int dimensionality,
                                     double interaction_range);

  /// Like `finest`, but caps the total subdomain count at roughly
  /// `max_subdomains` by coarsening evenly; used to study granularity.
  static SpatialDecomposition with_target(const Box& box, int dimensionality,
                                          double interaction_range,
                                          std::size_t max_subdomains);

  const Box& box() const { return box_; }
  const std::array<int, 3>& counts() const { return counts_; }
  double interaction_range() const { return range_; }

  /// Number of decomposed dimensions (count > 1).
  int dimensionality() const;

  std::size_t subdomain_count() const {
    return static_cast<std::size_t>(counts_[0]) * counts_[1] * counts_[2];
  }

  /// Grid coordinates <-> flat subdomain index (x-major).
  std::size_t flat_index(const std::array<int, 3>& coords) const;
  std::array<int, 3> coords_of(std::size_t subdomain) const;

  /// Subdomain containing position r (wrapped into the box first).
  std::size_t subdomain_of(const Vec3& r) const;

  /// Axis-aligned bounds of a subdomain.
  void bounds(std::size_t subdomain, Vec3& lo, Vec3& hi) const;

  /// Edge lengths of one subdomain.
  Vec3 subdomain_lengths() const;

  std::string describe() const;

  /// Largest dimensionality (3, 2, 1) whose `finest` decomposition is
  /// feasible for this box and range, or 0 when even a 1-D split is
  /// impossible (callers then fall back to a serial strategy).
  static int max_feasible_dimensionality(const Box& box,
                                         double interaction_range);

  /// Non-throwing probe: can `finest(box, dimensionality, range)` succeed?
  /// False (instead of a throw) for out-of-range dimensionality or a
  /// non-positive range, so callers can poll inside a hot loop without
  /// try/catch on InfeasibleError.
  static bool feasible(const Box& box, int dimensionality,
                       double interaction_range);

 private:
  static std::array<int, 3> finest_counts(const Box& box, int dimensionality,
                                          double interaction_range);

  Box box_;
  std::array<int, 3> counts_;
  double range_;
};

}  // namespace sdcmd
