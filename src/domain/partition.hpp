// Atom partition over colored subdomains (the paper's pstart / partindex
// arrays from Figs. 7-8).
//
// Subdomains are laid out color-major: all subdomains of color 0 first,
// then color 1, ... For each color the SDC kernels run
//
//   #pragma omp for
//   for (s = color_begin(c); s < color_end(c); ++s)
//     for (k = pstart[s]; k < pstart[s+1]; ++k)
//       i = partindex[k]; ...
//
// which is the contiguous-range equivalent of the paper's strided
// `for (spart = cpart; spart < subdomains; spart += colors)` loop.
//
// The partition is rebuilt whenever the neighbor list is rebuilt (the paper:
// "steps 1 and 2 will be done when the neighbor list is created or
// updated"), so its cost amortizes over many time steps.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "domain/coloring.hpp"
#include "domain/decomposition.hpp"

namespace sdcmd {

class Partition {
 public:
  Partition(const SpatialDecomposition& decomposition,
            const Coloring& coloring);

  /// (Re)assign atoms to subdomains from their current positions.
  void build(std::span<const Vec3> positions);

  int color_count() const { return color_count_; }
  std::size_t subdomain_count() const { return subdomain_of_slot_.size(); }
  std::size_t atom_count() const { return partindex_.size(); }

  /// Color-major subdomain slot range for a color.
  std::size_t color_begin(int color) const { return color_start_[color]; }
  std::size_t color_end(int color) const { return color_start_[color + 1]; }

  /// Atoms of the subdomain in color-major slot `slot`.
  std::span<const std::uint32_t> atoms_in_slot(std::size_t slot) const {
    return {partindex_.data() + pstart_[slot],
            partindex_.data() + pstart_[slot + 1]};
  }

  /// Raw arrays (paper naming) for the kernels.
  const std::vector<std::size_t>& pstart() const { return pstart_; }
  const std::vector<std::uint32_t>& partindex() const { return partindex_; }

  /// Flat subdomain index occupying a color-major slot.
  std::size_t subdomain_of_slot(std::size_t slot) const {
    return subdomain_of_slot_[slot];
  }

  /// Number of atoms per color; load balance diagnostics.
  std::vector<std::size_t> atoms_per_color() const;

  /// Largest relative deviation of per-subdomain atom counts within a
  /// color from that color's mean (0 = perfectly balanced).
  double imbalance() const;

 private:
  const SpatialDecomposition& decomposition_;
  const Coloring& coloring_;
  int color_count_;
  std::vector<std::size_t> color_start_;       // per color, slot offsets
  std::vector<std::size_t> subdomain_of_slot_; // slot -> flat subdomain
  std::vector<std::size_t> slot_of_subdomain_; // flat subdomain -> slot
  std::vector<std::size_t> pstart_;            // per slot, atom offsets
  std::vector<std::uint32_t> partindex_;       // atom ids grouped by slot
};

}  // namespace sdcmd
