#include "domain/decomposition.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace sdcmd {

SpatialDecomposition::SpatialDecomposition(const Box& box,
                                           std::array<int, 3> counts,
                                           double interaction_range)
    : box_(box), counts_(counts), range_(interaction_range) {
  SDCMD_REQUIRE(interaction_range > 0.0,
                "interaction range must be positive");
  for (int d = 0; d < 3; ++d) {
    const int n = counts_[d];
    if (n == 1) continue;  // dimension not decomposed
    if (n < 2 || n % 2 != 0) {
      throw InfeasibleError(
          "subdomain count along dimension " + std::to_string(d) +
          " must be 1 (undecomposed) or an even number >= 2, got " +
          std::to_string(n));
    }
    const double edge = box_.length(d) / n;
    if (edge < 2.0 * range_) {
      std::ostringstream os;
      os << "subdomain edge " << edge << " along dimension " << d
         << " is shorter than twice the interaction range "
         << 2.0 * range_ << "; decomposition would race";
      throw InfeasibleError(os.str());
    }
  }
}

std::array<int, 3> SpatialDecomposition::finest_counts(
    const Box& box, int dimensionality, double interaction_range) {
  SDCMD_REQUIRE(dimensionality >= 1 && dimensionality <= 3,
                "dimensionality must be 1, 2 or 3");
  std::array<int, 3> counts{1, 1, 1};
  for (int d = 0; d < dimensionality; ++d) {
    // Largest even n with box.length(d)/n >= 2*range.
    int n = static_cast<int>(box.length(d) / (2.0 * interaction_range));
    n -= n % 2;
    if (n < 2) {
      std::ostringstream os;
      os << dimensionality << "-D SDC infeasible: dimension " << d
         << " of length " << box.length(d)
         << " cannot hold two subdomains of edge >= "
         << 2.0 * interaction_range;
      throw InfeasibleError(os.str());
    }
    counts[d] = n;
  }
  return counts;
}

SpatialDecomposition SpatialDecomposition::finest(const Box& box,
                                                  int dimensionality,
                                                  double interaction_range) {
  return SpatialDecomposition(
      box, finest_counts(box, dimensionality, interaction_range),
      interaction_range);
}

SpatialDecomposition SpatialDecomposition::with_target(
    const Box& box, int dimensionality, double interaction_range,
    std::size_t max_subdomains) {
  SDCMD_REQUIRE(max_subdomains >= 1, "need a positive subdomain target");
  std::array<int, 3> counts =
      finest_counts(box, dimensionality, interaction_range);
  auto total = [&counts] {
    return static_cast<std::size_t>(counts[0]) * counts[1] * counts[2];
  };
  // Coarsen the largest dimension first, keeping counts even, until the
  // total fits the target (or nothing can shrink further).
  while (total() > max_subdomains) {
    int largest = -1;
    for (int d = 0; d < 3; ++d) {
      if (counts[d] >= 4 && (largest < 0 || counts[d] > counts[largest])) {
        largest = d;
      }
    }
    if (largest < 0) break;
    counts[largest] -= 2;
  }
  return SpatialDecomposition(box, counts, interaction_range);
}

bool SpatialDecomposition::feasible(const Box& box, int dimensionality,
                                    double interaction_range) {
  if (dimensionality < 1 || dimensionality > 3) return false;
  if (!(interaction_range > 0.0)) return false;
  for (int d = 0; d < dimensionality; ++d) {
    // Same arithmetic as finest_counts so probe and build never disagree:
    // the largest even n with box.length(d)/n >= 2*range must be >= 2.
    int n = static_cast<int>(box.length(d) / (2.0 * interaction_range));
    n -= n % 2;
    if (n < 2) return false;
  }
  return true;
}

int SpatialDecomposition::max_feasible_dimensionality(
    const Box& box, double interaction_range) {
  for (int dims = 3; dims >= 1; --dims) {
    if (feasible(box, dims, interaction_range)) return dims;
  }
  return 0;
}

int SpatialDecomposition::dimensionality() const {
  int dims = 0;
  for (int d = 0; d < 3; ++d) {
    if (counts_[d] > 1) ++dims;
  }
  return dims;
}

std::size_t SpatialDecomposition::flat_index(
    const std::array<int, 3>& coords) const {
  for (int d = 0; d < 3; ++d) {
    SDCMD_REQUIRE(coords[d] >= 0 && coords[d] < counts_[d],
                  "subdomain coordinate out of range");
  }
  return (static_cast<std::size_t>(coords[0]) * counts_[1] + coords[1]) *
             counts_[2] +
         coords[2];
}

std::array<int, 3> SpatialDecomposition::coords_of(
    std::size_t subdomain) const {
  SDCMD_REQUIRE(subdomain < subdomain_count(), "subdomain index out of range");
  std::array<int, 3> coords;
  coords[2] = static_cast<int>(subdomain % counts_[2]);
  subdomain /= counts_[2];
  coords[1] = static_cast<int>(subdomain % counts_[1]);
  coords[0] = static_cast<int>(subdomain / counts_[1]);
  return coords;
}

std::size_t SpatialDecomposition::subdomain_of(const Vec3& r) const {
  const Vec3 w = box_.wrap(r);
  std::array<int, 3> coords;
  for (int d = 0; d < 3; ++d) {
    const double frac = (w[d] - box_.lo()[d]) / box_.length(d);
    auto i = static_cast<int>(frac * counts_[d]);
    coords[d] = std::clamp(i, 0, counts_[d] - 1);
  }
  return flat_index(coords);
}

void SpatialDecomposition::bounds(std::size_t subdomain, Vec3& lo,
                                  Vec3& hi) const {
  const std::array<int, 3> coords = coords_of(subdomain);
  for (int d = 0; d < 3; ++d) {
    const double edge = box_.length(d) / counts_[d];
    lo[d] = box_.lo()[d] + edge * coords[d];
    hi[d] = coords[d] + 1 == counts_[d] ? box_.hi()[d]
                                        : box_.lo()[d] + edge * (coords[d] + 1);
  }
}

Vec3 SpatialDecomposition::subdomain_lengths() const {
  return {box_.length(0) / counts_[0], box_.length(1) / counts_[1],
          box_.length(2) / counts_[2]};
}

std::string SpatialDecomposition::describe() const {
  std::ostringstream os;
  os << dimensionality() << "-D decomposition " << counts_[0] << "x"
     << counts_[1] << "x" << counts_[2] << " (" << subdomain_count()
     << " subdomains, edge >= " << 2.0 * range_ << ")";
  return os.str();
}

}  // namespace sdcmd
