// Leveled logging to stderr. The default level is Warn so library users get
// silence on the happy path; examples and benches raise it to Info.
// SDCMD_LOG_LEVEL=debug|info|warn|error overrides at startup.
#pragma once

#include <sstream>
#include <string>

namespace sdcmd {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global threshold; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Parse "debug"/"info"/"warn"/"error"/"off" (case-insensitive).
LogLevel parse_log_level(const std::string& name);

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

}  // namespace sdcmd

#define SDCMD_LOG_AT(level, expr)                                   \
  do {                                                              \
    if (static_cast<int>(level) >=                                  \
        static_cast<int>(::sdcmd::log_level())) {                   \
      std::ostringstream sdcmd_log_os;                              \
      sdcmd_log_os << expr;                                         \
      ::sdcmd::detail::log_emit(level, sdcmd_log_os.str());         \
    }                                                               \
  } while (false)

#define SDCMD_DEBUG(expr) SDCMD_LOG_AT(::sdcmd::LogLevel::Debug, expr)
#define SDCMD_INFO(expr) SDCMD_LOG_AT(::sdcmd::LogLevel::Info, expr)
#define SDCMD_WARN(expr) SDCMD_LOG_AT(::sdcmd::LogLevel::Warn, expr)
#define SDCMD_ERROR(expr) SDCMD_LOG_AT(::sdcmd::LogLevel::Error, expr)
