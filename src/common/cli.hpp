// Tiny declarative command-line parser for the examples and benches.
//
// Supports `--name value`, `--name=value` and boolean `--flag` options, with
// typed accessors, defaults, and an auto-generated --help text. Not a general
// CLI framework; just enough so every example binary has consistent flags.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace sdcmd {

class CliParser {
 public:
  CliParser(std::string program, std::string description);

  /// Declare an option carrying a value. `doc` appears in --help.
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& doc);

  /// Declare a boolean flag (present => true).
  void add_flag(const std::string& name, const std::string& doc);

  /// Parse argv. Returns false (after printing usage) when --help was given
  /// or an unknown/malformed option was seen.
  bool parse(int argc, const char* const* argv);

  std::string get(const std::string& name) const;
  int get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Comma-separated integer list, e.g. --threads 2,4,8.
  std::vector<int> get_int_list(const std::string& name) const;

  /// Positional arguments left after option parsing.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string usage() const;

 private:
  struct Option {
    std::string name;
    std::string value;
    std::string default_value;
    std::string doc;
    bool is_flag = false;
    bool seen = false;
  };

  Option* find(const std::string& name);
  const Option* find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::vector<Option> options_;
  std::vector<std::string> positional_;
};

}  // namespace sdcmd
