// Error handling primitives for sdcmd.
//
// The library throws typed exceptions for recoverable misuse (bad input
// files, infeasible decompositions) and uses SDCMD_REQUIRE for precondition
// checks that indicate a programming error at the call site.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sdcmd {

/// Base class of every exception thrown by sdcmd.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// An input file (e.g. a setfl potential table) is malformed.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// A requested configuration is infeasible (e.g. a 1-D SDC decomposition
/// cannot produce enough subdomains for the requested box and cutoff).
class InfeasibleError : public Error {
 public:
  explicit InfeasibleError(const std::string& what) : Error(what) {}
};

/// A stored file's integrity checksum does not match its contents.
/// Subclasses ParseError so generic "malformed input" handlers still catch
/// it while recovery code can distinguish corruption from truncation.
class ChecksumError : public ParseError {
 public:
  explicit ChecksumError(const std::string& what) : ParseError(what) {}
};

/// A running simulation violated a health invariant (non-finite state,
/// kinetic-energy blowup, runaway displacement) and the configured policy
/// could not recover it.
class HealthError : public Error {
 public:
  explicit HealthError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": requirement `" << expr << "` failed";
  if (!msg.empty()) os << ": " << msg;
  throw PreconditionError(os.str());
}
}  // namespace detail

}  // namespace sdcmd

/// Precondition check that survives in release builds: violating a documented
/// API contract throws sdcmd::PreconditionError with file/line context.
#define SDCMD_REQUIRE(expr, msg)                                            \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::sdcmd::detail::throw_precondition(#expr, __FILE__, __LINE__, msg);  \
    }                                                                       \
  } while (false)
