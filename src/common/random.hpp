// Deterministic, seedable random number generation.
//
// MD initialization (Maxwell-Boltzmann velocities, thermal displacement
// noise) must be reproducible across runs and thread counts, so sdcmd ships
// its own xoshiro256** generator instead of relying on implementation-defined
// std::mt19937 distributions.
#pragma once

#include <cstdint>

namespace sdcmd {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG (Blackman & Vigna).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x5dcab679u);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal deviate (Marsaglia polar method, cached pair).
  double normal();

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Uniform integer in [0, n). Rejection-sampled: unbiased for all n.
  std::uint64_t below(std::uint64_t n);

  /// Jump the generator state far ahead; used to derive independent
  /// per-thread streams from one seed.
  void long_jump();

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace sdcmd
