// Deterministic fault injection for robustness testing.
//
// A process-wide registry of named injection points. Production code is
// sprinkled with cheap probes (one relaxed atomic load when nothing is
// armed); tests arm a point with an exact trigger count so every recovery
// path — NaN forces, position kicks, truncated checkpoint writes — is
// exercised deterministically rather than by luck.
//
//   FaultInjector::instance().arm(faults::kForceNan, {.countdown = 3});
//   ... run the simulation: the 4th force evaluation produces a NaN ...
//   FaultInjector::instance().disarm_all();
//
// Probes sit at step/IO granularity (never inside per-atom loops), so an
// armed-but-idle injector costs nothing measurable.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/vec3.hpp"

namespace sdcmd {

/// Canonical injection-point names. Points are plain strings so tests can
/// add ad-hoc ones, but production probes use these constants.
namespace faults {
/// Force providers: overwrite one atom's force with NaN after compute.
inline constexpr const char* kForceNan = "force.nan";
/// Integrator: displace one atom by `magnitude` angstrom after the drift.
inline constexpr const char* kPositionKick = "integrator.position_kick";
/// Checkpoint writer: truncate the payload and abort before the rename,
/// simulating a crash mid-write.
inline constexpr const char* kCheckpointShortWrite = "checkpoint.short_write";
/// Simulation driver: isotropically rescale the box by `magnitude`
/// (default 0.5) with an affine position remap, simulating a barostat
/// collapse that invalidates the SDC decomposition mid-run.
inline constexpr const char* kBoxShrink = "governor.box_shrink";
/// Checkpoint writer: fail the write with a simulated ENOSPC (the .tmp
/// file is cleaned up and Error thrown), exercising the run supervisor's
/// retry-with-backoff path. `shots` bounds how many attempts fail.
inline constexpr const char* kDiskFull = "run.disk_full";
/// Run-directory MANIFEST writer: bypass the temp-then-rename protocol and
/// leave a truncated MANIFEST at the final path, simulating a torn write
/// by a non-atomic writer (or a crashed rename on a broken filesystem).
/// Resume must detect the corruption and fall back to the directory scan.
inline constexpr const char* kManifestTornWrite = "run.manifest_torn_write";
/// Session-server accept loop: drop a freshly accepted connection on the
/// floor (close it unserved), simulating a transient accept()/fd failure.
/// The daemon must keep serving every other client.
inline constexpr const char* kServeAcceptFail = "serve.accept_fail";
/// Session-server response writer: pretend the client stopped draining its
/// socket and the write deadline expired. The server must disconnect that
/// client without stalling the serve loop or harming any session.
inline constexpr const char* kServeSlowClient = "serve.slow_client";
/// Session step worker: simulate an allocation failure inside a session's
/// step quantum. The worker must quarantine the session (checkpoint,
/// demote, suspend) instead of letting the exception kill the daemon.
inline constexpr const char* kServeSessionOom = "serve.session_oom";
}  // namespace faults

/// What an armed injection point does when it fires.
struct FaultSpec {
  /// Number of probe hits to let pass before firing (0 = fire on the first).
  long countdown = 0;
  /// How many consecutive hits fire once triggered; -1 = every hit forever.
  int shots = 1;
  /// Point-specific payload: kick distance (angstrom) for kPositionKick,
  /// fraction of the payload kept for kCheckpointShortWrite.
  double magnitude = 0.0;
  /// Target element (atom index); taken modulo the array size at the probe.
  std::size_t index = 0;
};

class FaultInjector {
 public:
  static FaultInjector& instance();

  /// Arm `point`; replaces any previous spec and resets its hit counter.
  void arm(const std::string& point, FaultSpec spec);
  void disarm(const std::string& point);
  void disarm_all();

  /// Probe: counts a hit at `point` and returns the spec when it fires.
  /// Near-free when nothing is armed (single relaxed atomic load).
  std::optional<FaultSpec> should_fire(std::string_view point);

  /// True when any point is armed (the probes' fast-path check).
  bool armed() const {
    return armed_points_.load(std::memory_order_relaxed) > 0;
  }

  /// Total times `point` has fired since it was armed.
  long fire_count(std::string_view point) const;

 private:
  FaultInjector() = default;

  struct Entry {
    FaultSpec spec;
    long hits = 0;
    long fires = 0;
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  std::atomic<int> armed_points_{0};
};

/// Probe helpers wrapping the canonical points (no-ops when disarmed).
namespace faults {
/// kForceNan: poison forces[spec.index % n] with quiet NaNs.
void maybe_poison_forces(std::span<Vec3> forces);
/// kPositionKick: displace positions[spec.index % n] by magnitude along x.
void maybe_kick_position(std::span<Vec3> positions);
}  // namespace faults

}  // namespace sdcmd
