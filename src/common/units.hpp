// Internal unit system and physical constants.
//
// sdcmd works in reduced "metal-like" units chosen so that the common EAM
// literature values can be used verbatim:
//
//   length : angstrom (A)
//   energy : electron-volt (eV)
//   mass   : atomic mass unit (amu)
//
// With those three fixed, the derived time unit is
//   t* = sqrt(amu * A^2 / eV) = 10.180505 fs,
// i.e. velocities are in A/t*, forces in eV/A, and a time step of
// 10^-17 s (the paper's Section III.B) is dt = 1e-2 fs = 9.8227e-4 t*.
#pragma once

namespace sdcmd::units {

/// Boltzmann constant in eV/K.
inline constexpr double kBoltzmann = 8.617333262e-5;

/// One internal time unit expressed in femtoseconds.
inline constexpr double kTimeUnitFs = 10.180505;

/// Convert a time step given in femtoseconds into internal units.
constexpr double fs_to_internal(double fs) { return fs / kTimeUnitFs; }

/// Convert an internal time into femtoseconds.
constexpr double internal_to_fs(double t) { return t * kTimeUnitFs; }

/// Mass of iron in amu (the paper simulates pure bcc Fe).
inline constexpr double kMassFe = 55.845;

/// Conventional bcc lattice constant of iron in angstrom at 0 K.
inline constexpr double kLatticeFe = 2.8665;

/// eV/A^3 expressed in gigapascal, for pressure reporting.
inline constexpr double kEvPerA3ToGPa = 160.21766208;

}  // namespace sdcmd::units
