#include "common/random.hpp"

#include <cmath>

namespace sdcmd {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::uniform() {
  // 53 random bits into the mantissa: uniform on [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

double Xoshiro256::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double f = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * f;
  has_cached_normal_ = true;
  return u * f;
}

double Xoshiro256::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::uint64_t Xoshiro256::below(std::uint64_t n) {
  if (n == 0) return 0;
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

void Xoshiro256::long_jump() {
  static constexpr std::uint64_t kJump[] = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
      0x39109bb02acbe635ULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (std::uint64_t{1} << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      next();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

}  // namespace sdcmd
