// Streaming statistics and simple summaries for timings and physics series.
#pragma once

#include <cstddef>
#include <vector>

namespace sdcmd {

/// Welford online mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for n < 2).
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

  /// Merge another accumulator into this one (parallel reduction friendly).
  void merge(const RunningStats& other);

  void reset() { *this = RunningStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Median of a copy of `xs` (empty input returns 0).
double median(std::vector<double> xs);

/// p-th percentile (0 <= p <= 100) with linear interpolation.
double percentile(std::vector<double> xs, double p);

/// Fixed-width histogram over [lo, hi]; out-of-range samples clamp to the
/// edge bins. Used by tests to sanity-check velocity distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_center(std::size_t bin) const;
  double lo() const { return lo_; }
  double hi() const { return hi_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace sdcmd
