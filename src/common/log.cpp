#include "common/log.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace sdcmd {

namespace {

std::atomic<int> g_level{[] {
  if (const char* env = std::getenv("SDCMD_LOG_LEVEL")) {
    return static_cast<int>(parse_log_level(env));
  }
  return static_cast<int>(LogLevel::Warn);
}()};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel parse_log_level(const std::string& name) {
  std::string lower(name.size(), '\0');
  std::transform(name.begin(), name.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info") return LogLevel::Info;
  if (lower == "warn" || lower == "warning") return LogLevel::Warn;
  if (lower == "error") return LogLevel::Error;
  if (lower == "off" || lower == "none") return LogLevel::Off;
  return LogLevel::Warn;
}

namespace detail {

void log_emit(LogLevel level, const std::string& message) {
  // Assemble the whole record first and emit it with a single fwrite:
  // stderr is unbuffered, so piecewise streaming from concurrent OpenMP
  // regions interleaves fragments of different records. fwrite locks the
  // FILE internally, keeping each line atomic without a mutex here.
  std::string line;
  line.reserve(message.size() + 16);
  line += "[sdcmd:";
  line += level_name(level);
  line += "] ";
  line += message;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace detail

}  // namespace sdcmd
