// CSV output so bench results can be post-processed (plots, regression
// tracking) without scraping the ASCII tables.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace sdcmd {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, std::vector<std::string> headers);

  void add_row(const std::vector<std::string>& cells);

  /// True when the file opened successfully; rows are dropped otherwise
  /// (benches still print their tables even if the CSV dir is missing).
  bool ok() const { return static_cast<bool>(out_); }

  static std::string escape(const std::string& field);

 private:
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace sdcmd
