#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace sdcmd {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void AsciiTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << std::left << std::setw(static_cast<int>(widths[c])) << cell;
      os << (c + 1 == headers_.size() ? " |" : " | ");
    }
    os << '\n';
  };

  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-')
       << (c + 1 == headers_.size() ? "|" : "|");
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace sdcmd
