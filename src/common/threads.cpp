#include "common/threads.hpp"

#include <omp.h>

#include <sstream>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

namespace sdcmd {

int max_threads() { return omp_get_max_threads(); }

void set_threads(int n) { omp_set_num_threads(n > 0 ? n : 1); }

int thread_id() { return omp_get_thread_num(); }

int hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? static_cast<int>(n) : 1;
}

bool pin_current_thread(int cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu % hardware_threads()), &set);
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

int pin_openmp_threads_round_robin() {
  int pinned = 0;
#pragma omp parallel reduction(+ : pinned)
  {
    if (pin_current_thread(omp_get_thread_num())) pinned = 1;
  }
  return pinned;
}

std::string thread_summary() {
  std::ostringstream os;
  os << max_threads() << " OpenMP thread(s) on " << hardware_threads()
     << " hardware thread(s)";
  return os.str();
}

}  // namespace sdcmd
