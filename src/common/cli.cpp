#include "common/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "common/error.hpp"

namespace sdcmd {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {
  add_flag("help", "show this help text");
}

void CliParser::add_option(const std::string& name,
                           const std::string& default_value,
                           const std::string& doc) {
  SDCMD_REQUIRE(find(name) == nullptr, "duplicate option --" + name);
  options_.push_back({name, default_value, default_value, doc, false, false});
}

void CliParser::add_flag(const std::string& name, const std::string& doc) {
  SDCMD_REQUIRE(find(name) == nullptr, "duplicate flag --" + name);
  options_.push_back({name, "false", "false", doc, true, false});
}

CliParser::Option* CliParser::find(const std::string& name) {
  for (auto& o : options_) {
    if (o.name == name) return &o;
  }
  return nullptr;
}

const CliParser::Option* CliParser::find(const std::string& name) const {
  for (const auto& o : options_) {
    if (o.name == name) return &o;
  }
  return nullptr;
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_inline_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_inline_value = true;
    }
    Option* opt = find(arg);
    if (opt == nullptr) {
      std::cerr << "unknown option --" << arg << "\n\n" << usage();
      return false;
    }
    if (opt->is_flag) {
      opt->value = has_inline_value ? value : "true";
    } else if (has_inline_value) {
      opt->value = value;
    } else if (i + 1 < argc) {
      opt->value = argv[++i];
    } else {
      std::cerr << "option --" << arg << " expects a value\n\n" << usage();
      return false;
    }
    opt->seen = true;
  }
  if (get_bool("help")) {
    std::cout << usage();
    return false;
  }
  return true;
}

std::string CliParser::get(const std::string& name) const {
  const Option* opt = find(name);
  SDCMD_REQUIRE(opt != nullptr, "undeclared option --" + name);
  return opt->value;
}

int CliParser::get_int(const std::string& name) const {
  return static_cast<int>(std::strtol(get(name).c_str(), nullptr, 10));
}

double CliParser::get_double(const std::string& name) const {
  return std::strtod(get(name).c_str(), nullptr);
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string v = get(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::vector<int> CliParser::get_int_list(const std::string& name) const {
  std::vector<int> out;
  std::istringstream is(get(name));
  std::string part;
  while (std::getline(is, part, ',')) {
    if (!part.empty()) {
      out.push_back(static_cast<int>(std::strtol(part.c_str(), nullptr, 10)));
    }
  }
  return out;
}

std::string CliParser::usage() const {
  std::ostringstream os;
  os << program_ << " - " << description_ << "\n\noptions:\n";
  for (const auto& o : options_) {
    os << "  --" << o.name;
    if (!o.is_flag) os << " <value>";
    os << "\n      " << o.doc;
    if (!o.is_flag && !o.default_value.empty()) {
      os << " (default: " << o.default_value << ")";
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace sdcmd
