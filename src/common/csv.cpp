#include "common/csv.hpp"

#include "common/error.hpp"

namespace sdcmd {

CsvWriter::CsvWriter(const std::string& path,
                     std::vector<std::string> headers)
    : out_(path), columns_(headers.size()) {
  if (!out_) return;
  add_row(headers);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  if (!out_) return;
  SDCMD_REQUIRE(cells.size() == columns_, "CSV row width mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace sdcmd
