// Minimal 3-component vector used for positions, velocities and forces.
//
// Atom storage is SoA (see md/atoms.hpp); Vec3 is the convenience type for
// scalar-path code, geometry and tests.
#pragma once

#include <cmath>
#include <iosfwd>
#include <ostream>

namespace sdcmd {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr double& operator[](int i) { return i == 0 ? x : (i == 1 ? y : z); }
  constexpr double operator[](int i) const {
    return i == 0 ? x : (i == 1 ? y : z);
  }

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x; y += o.y; z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x; y -= o.y; z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(double s) {
    x *= s; y *= s; z *= s;
    return *this;
  }
  constexpr Vec3& operator/=(double s) { return *this *= (1.0 / s); }

  friend constexpr Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
  friend constexpr Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
  friend constexpr Vec3 operator*(Vec3 a, double s) { return a *= s; }
  friend constexpr Vec3 operator*(double s, Vec3 a) { return a *= s; }
  friend constexpr Vec3 operator/(Vec3 a, double s) { return a /= s; }
  friend constexpr Vec3 operator-(const Vec3& a) { return {-a.x, -a.y, -a.z}; }

  friend constexpr bool operator==(const Vec3&, const Vec3&) = default;
};

constexpr double dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

constexpr Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
          a.x * b.y - a.y * b.x};
}

constexpr double norm2(const Vec3& a) { return dot(a, a); }

inline double norm(const Vec3& a) { return std::sqrt(norm2(a)); }

inline Vec3 normalized(const Vec3& a) { return a / norm(a); }

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

}  // namespace sdcmd
