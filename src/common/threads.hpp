// OpenMP runtime helpers.
//
// The paper pins threads to cores with sched_setaffinity at startup; we
// expose the same capability (best-effort, Linux-only) plus the usual
// thread-count plumbing the bench harness sweeps over.
#pragma once

#include <cstddef>
#include <string>

namespace sdcmd {

/// Number of OpenMP threads a parallel region will use right now.
int max_threads();

/// Set the OpenMP thread count for subsequent parallel regions.
void set_threads(int n);

/// Thread id inside a parallel region (0 outside one).
int thread_id();

/// Number of hardware threads the OS reports.
int hardware_threads();

/// Pin the calling thread to `cpu % hardware_threads()`. Returns false when
/// the platform does not support affinity or the syscall fails; callers
/// treat pinning as an optimization, never a requirement.
bool pin_current_thread(int cpu);

/// Pin every OpenMP thread round-robin across the hardware threads, like the
/// paper's sched_setaffinity startup binding. Returns the number of threads
/// successfully pinned.
int pin_openmp_threads_round_robin();

/// "N threads on M hardware threads (pinning: yes/no)" for bench headers.
std::string thread_summary();

}  // namespace sdcmd
