// ASCII table rendering for the benchmark harness.
//
// The Table 1 / Fig. 9 reproductions print rows exactly like the paper's
// layout (method x thread-count speedup grids), so the harness needs a small
// formatter rather than raw printf.
#pragma once

#include <string>
#include <vector>

namespace sdcmd {

class AsciiTable {
 public:
  /// A table with the given column headers.
  explicit AsciiTable(std::vector<std::string> headers);

  /// Append one row; pads/truncates to the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with `precision` digits after the point.
  static std::string fmt(double v, int precision = 2);

  /// Render with column alignment, a header underline and outer padding.
  std::string render() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sdcmd
