// Wall-clock timing used by the benchmark harness and the simulation
// instrumentation. All times are in seconds.
#pragma once

#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

namespace sdcmd {

/// Monotonic wall-clock time in seconds since an arbitrary epoch.
double wall_time();

/// Simple start/stop stopwatch accumulating total elapsed time.
class Stopwatch {
 public:
  void start();
  /// Stops the watch and returns the length of the lap just ended.
  double stop();
  void reset();

  double total() const { return total_; }
  std::size_t laps() const { return laps_; }
  bool running() const { return running_; }

 private:
  double total_ = 0.0;
  double start_ = 0.0;
  std::size_t laps_ = 0;
  bool running_ = false;
};

/// RAII lap on a stopwatch.
class ScopedTimer {
 public:
  explicit ScopedTimer(Stopwatch& watch) : watch_(watch) { watch_.start(); }
  ~ScopedTimer() { watch_.stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Stopwatch& watch_;
};

/// A named set of stopwatches, e.g. one per EAM force phase.
class PhaseTimers {
 public:
  /// Returns (creating on first use) the stopwatch with the given name.
  Stopwatch& operator[](const std::string& name);

  struct Entry {
    std::string name;
    double seconds;
    std::size_t laps;
  };
  /// All phases in insertion order.
  std::vector<Entry> entries() const;

  double total() const;
  void reset();

 private:
  std::vector<std::pair<std::string, Stopwatch>> timers_;
};

}  // namespace sdcmd
