// Wall-clock timing used by the benchmark harness and the simulation
// instrumentation. All times are in seconds.
#pragma once

#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

namespace sdcmd {

/// Monotonic wall-clock time in seconds since an arbitrary epoch.
double wall_time();

/// Simple start/stop stopwatch accumulating total elapsed time.
class Stopwatch {
 public:
  void start();
  /// Stops the watch and returns the length of the lap just ended.
  double stop();
  /// Record an externally measured lap (e.g. a phase boundary clocked by
  /// the master thread inside a parallel region).
  void add_lap(double seconds) {
    total_ += seconds;
    ++laps_;
  }
  void reset();

  double total() const { return total_; }
  std::size_t laps() const { return laps_; }
  bool running() const { return running_; }

 private:
  double total_ = 0.0;
  double start_ = 0.0;
  std::size_t laps_ = 0;
  bool running_ = false;
};

/// RAII lap on a stopwatch.
class ScopedTimer {
 public:
  explicit ScopedTimer(Stopwatch& watch) : watch_(watch) { watch_.start(); }
  ~ScopedTimer() { watch_.stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Stopwatch& watch_;
};

/// A named set of stopwatches, e.g. one per EAM force phase.
///
/// Hot loops should intern the name once with index() and lap through
/// slot(): operator[] walks the name list with string compares on every
/// call, which is measurable when a phase runs thousands of times per
/// second.
class PhaseTimers {
 public:
  /// Returns (creating on first use) the stopwatch with the given name.
  /// Prefer index()/slot() anywhere called per step.
  Stopwatch& operator[](const std::string& name);

  /// Intern `name` (creating its stopwatch on first use) and return a
  /// stable handle for slot(). Handles stay valid across reset().
  std::size_t index(const std::string& name);

  /// O(1) access by interned handle.
  Stopwatch& slot(std::size_t idx) { return timers_[idx].second; }
  const Stopwatch& slot(std::size_t idx) const { return timers_[idx].second; }

  struct Entry {
    std::string name;
    double seconds;
    std::size_t laps;
  };
  /// All phases in insertion order.
  std::vector<Entry> entries() const;

  double total() const;
  void reset();

 private:
  std::vector<std::pair<std::string, Stopwatch>> timers_;
};

}  // namespace sdcmd
