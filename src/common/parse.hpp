// Line-number context for token-stream parsers.
//
// The potential-file readers (setfl/funcfl) parse whitespace-separated
// tokens, which loses the line structure operator>> skipped over. When a
// parse fails these helpers recover the 1-based line number by re-scanning
// the consumed prefix of a seekable stream, so error messages can point at
// the offending line of a malformed table.
#pragma once

#include <algorithm>
#include <istream>
#include <string>

namespace sdcmd {

/// 1-based line number at the stream's current read position, or -1 when
/// the stream is not seekable. Clears fail/eof bits to probe the position;
/// intended for use on the way to throwing a ParseError.
inline long stream_line_number(std::istream& in) {
  in.clear();
  const std::streampos pos = in.tellg();
  if (pos < std::streampos(0)) return -1;
  if (!in.seekg(0)) return -1;
  long line = 1;
  std::streamoff remaining = static_cast<std::streamoff>(pos);
  char buf[4096];
  while (remaining > 0 && in) {
    const std::streamsize chunk = static_cast<std::streamsize>(
        std::min<std::streamoff>(remaining,
                                 static_cast<std::streamoff>(sizeof buf)));
    in.read(buf, chunk);
    const std::streamsize got = in.gcount();
    if (got <= 0) break;
    line += static_cast<long>(std::count(buf, buf + got, '\n'));
    remaining -= got;
  }
  in.clear();
  in.seekg(pos);
  return line;
}

/// " (near line N)" when the stream position is recoverable, "" otherwise.
inline std::string line_suffix(std::istream& in) {
  const long line = stream_line_number(in);
  return line > 0 ? " (near line " + std::to_string(line) + ")"
                  : std::string();
}

}  // namespace sdcmd
