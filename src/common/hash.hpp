// FNV-1a 64-bit hashing shared by the integrity-checked file formats
// (checkpoint v2 payload footer, run-directory MANIFEST) and the run
// supervisor's config fingerprint. One canonical implementation so the
// chaos tooling (scripts/chaos_resume.py) can re-verify every artifact
// with the same constants.
#pragma once

#include <cstdint>
#include <string_view>
#include <type_traits>

namespace sdcmd {

inline constexpr std::uint64_t kFnv1a64Offset = 14695981039346656037ull;
inline constexpr std::uint64_t kFnv1a64Prime = 1099511628211ull;

/// FNV-1a over raw bytes.
constexpr std::uint64_t fnv1a64(std::string_view bytes,
                                std::uint64_t seed = kFnv1a64Offset) {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnv1a64Prime;
  }
  return h;
}

/// Fold a trivially-copyable value into a running FNV-1a hash. Used to
/// fingerprint the RNG-relevant run configuration (dt, seed, lattice...)
/// so a resume refuses to continue a run whose physics would differ.
template <typename T>
std::uint64_t fnv1a64_mix(std::uint64_t seed, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const char* p = reinterpret_cast<const char*>(&value);
  return fnv1a64(std::string_view(p, sizeof(T)), seed);
}

}  // namespace sdcmd
