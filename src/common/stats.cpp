#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace sdcmd {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double median(std::vector<double> xs) { return percentile(std::move(xs), 50.0); }

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  SDCMD_REQUIRE(p >= 0.0 && p <= 100.0, "percentile out of range");
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  SDCMD_REQUIRE(hi > lo, "histogram range must be non-empty");
  SDCMD_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<long>(t * static_cast<double>(counts_.size()));
  bin = std::clamp(bin, 0L, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_center(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * width;
}

}  // namespace sdcmd
