#include "common/timer.hpp"

#include "common/error.hpp"

namespace sdcmd {

double wall_time() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

void Stopwatch::start() {
  SDCMD_REQUIRE(!running_, "stopwatch already running");
  running_ = true;
  start_ = wall_time();
}

double Stopwatch::stop() {
  SDCMD_REQUIRE(running_, "stopwatch not running");
  const double lap = wall_time() - start_;
  total_ += lap;
  ++laps_;
  running_ = false;
  return lap;
}

void Stopwatch::reset() {
  total_ = 0.0;
  laps_ = 0;
  running_ = false;
}

Stopwatch& PhaseTimers::operator[](const std::string& name) {
  return slot(index(name));
}

std::size_t PhaseTimers::index(const std::string& name) {
  for (std::size_t i = 0; i < timers_.size(); ++i) {
    if (timers_[i].first == name) return i;
  }
  timers_.emplace_back(name, Stopwatch{});
  return timers_.size() - 1;
}

std::vector<PhaseTimers::Entry> PhaseTimers::entries() const {
  std::vector<Entry> out;
  out.reserve(timers_.size());
  for (const auto& [n, w] : timers_) {
    out.push_back({n, w.total(), w.laps()});
  }
  return out;
}

double PhaseTimers::total() const {
  double t = 0.0;
  for (const auto& [n, w] : timers_) t += w.total();
  return t;
}

void PhaseTimers::reset() {
  for (auto& [n, w] : timers_) w.reset();
}

}  // namespace sdcmd
