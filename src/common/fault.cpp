#include "common/fault.hpp"

#include <limits>

namespace sdcmd {

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(const std::string& point, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = entries_.insert_or_assign(point, Entry{spec, 0, 0});
  (void)it;
  if (inserted) {
    armed_points_.fetch_add(1, std::memory_order_relaxed);
  }
}

void FaultInjector::disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.erase(point) > 0) {
    armed_points_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjector::disarm_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  armed_points_.store(0, std::memory_order_relaxed);
}

std::optional<FaultSpec> FaultInjector::should_fire(std::string_view point) {
  if (!armed()) return std::nullopt;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(std::string(point));
  if (it == entries_.end()) return std::nullopt;
  Entry& entry = it->second;
  const long hit = entry.hits++;
  if (hit < entry.spec.countdown) return std::nullopt;
  if (entry.spec.shots >= 0 &&
      hit >= entry.spec.countdown + entry.spec.shots) {
    return std::nullopt;
  }
  ++entry.fires;
  return entry.spec;
}

long FaultInjector::fire_count(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(std::string(point));
  return it == entries_.end() ? 0 : it->second.fires;
}

namespace faults {

void maybe_poison_forces(std::span<Vec3> forces) {
  if (forces.empty()) return;
  if (const auto spec = FaultInjector::instance().should_fire(kForceNan)) {
    constexpr double nan = std::numeric_limits<double>::quiet_NaN();
    forces[spec->index % forces.size()] = {nan, nan, nan};
  }
}

void maybe_kick_position(std::span<Vec3> positions) {
  if (positions.empty()) return;
  if (const auto spec =
          FaultInjector::instance().should_fire(kPositionKick)) {
    positions[spec->index % positions.size()].x += spec->magnitude;
  }
}

}  // namespace faults

}  // namespace sdcmd
