// Kernel-level microbenchmarks (google-benchmark): the building blocks
// whose costs explain the macro results - potential evaluation, neighbor
// machinery, schedule construction, and the per-update cost of each
// synchronization primitive the strategies rely on.
//
// Besides the google-benchmark suite, `--pair-cache on|off|ab` runs the
// ISSUE 3 A/B harness: the same EAM workload with the per-pair
// geometry/spline cache enabled and disabled, reporting per-phase
// seconds/step and writing sdcmd.bench.v1 rows via --metrics-out.
// `--hw-counters` runs the ISSUE 7 perf_event_open table: per-phase
// cycles/atom, IPC, cache-miss rate and FP scalar/vector op mix for one
// EAM workload, same values in the printed table and the sdcmd.bench.v1
// report. `--soa on|off|ab` runs the ISSUE 8 A/B harness: the fused EAM
// step through the SIMD structure-of-arrays fast path vs the scalar
// reference, reporting per-phase seconds/step plus FP vector-vs-scalar
// op counts so vectorization wins show up in the counters too.
#include <benchmark/benchmark.h>
#include <omp.h>

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "common/cli.hpp"
#include "common/random.hpp"
#include "common/threads.hpp"
#include "common/timer.hpp"
#include "common/units.hpp"
#include "core/eam_force.hpp"
#include "core/sdc_schedule.hpp"
#include "geom/lattice.hpp"
#include "neighbor/neighbor_list.hpp"
#include "neighbor/reorder.hpp"
#include "obs/bench_report.hpp"
#include "potential/finnis_sinclair.hpp"
#include "potential/tabulated.hpp"

namespace {

using namespace sdcmd;

constexpr double kSkin = 0.4;

std::vector<Vec3> jittered_bcc(int cells, Box& box_out) {
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = units::kLatticeFe;
  spec.nx = spec.ny = spec.nz = cells;
  box_out = spec.box();
  auto positions = build_lattice(spec);
  Xoshiro256 rng(1);
  for (auto& r : positions) {
    r += Vec3{rng.normal(0.0, 0.05), rng.normal(0.0, 0.05),
              rng.normal(0.0, 0.05)};
    r = box_out.wrap(r);
  }
  return positions;
}

void BM_FsAnalyticEvaluation(benchmark::State& state) {
  FinnisSinclair fe(FinnisSinclairParams::iron());
  Xoshiro256 rng(2);
  std::vector<double> rs(1024);
  for (auto& r : rs) r = rng.uniform(2.0, 3.5);
  for (auto _ : state) {
    double acc = 0.0;
    for (double r : rs) {
      double v, dv, phi, dphi;
      fe.pair(r, v, dv);
      fe.density(r, phi, dphi);
      acc += v + phi;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * rs.size());
}
BENCHMARK(BM_FsAnalyticEvaluation);

void BM_TabulatedEvaluation(benchmark::State& state) {
  FinnisSinclair fe(FinnisSinclairParams::iron());
  const auto tab = TabulatedEam::from_analytic(fe, 2000, 2000, 60.0);
  Xoshiro256 rng(2);
  std::vector<double> rs(1024);
  for (auto& r : rs) r = rng.uniform(2.0, 3.5);
  for (auto _ : state) {
    double acc = 0.0;
    for (double r : rs) {
      double v, dv, phi, dphi;
      tab.pair(r, v, dv);
      tab.density(r, phi, dphi);
      acc += v + phi;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * rs.size());
}
BENCHMARK(BM_TabulatedEvaluation);

void BM_NeighborListBuild(benchmark::State& state) {
  Box box = Box::cubic(1.0);
  const auto positions = jittered_bcc(static_cast<int>(state.range(0)), box);
  NeighborListConfig cfg;
  cfg.cutoff = 3.569745;
  cfg.skin = kSkin;
  NeighborList list(box, cfg);
  for (auto _ : state) {
    list.build(positions);
    benchmark::DoNotOptimize(list.pair_count());
  }
  state.SetItemsProcessed(state.iterations() * positions.size());
}
BENCHMARK(BM_NeighborListBuild)->Arg(6)->Arg(10)->Arg(14);

void BM_SdcScheduleBuild(benchmark::State& state) {
  Box box = Box::cubic(1.0);
  const auto positions = jittered_bcc(static_cast<int>(state.range(0)), box);
  SdcConfig cfg;
  cfg.dimensionality = 2;
  SdcSchedule schedule(box, 3.569745 + kSkin, cfg);
  for (auto _ : state) {
    schedule.rebuild(positions);
    benchmark::DoNotOptimize(schedule.partition().atom_count());
  }
  state.SetItemsProcessed(state.iterations() * positions.size());
}
BENCHMARK(BM_SdcScheduleBuild)->Arg(10)->Arg(14);

void BM_SpatialSortPermutation(benchmark::State& state) {
  Box box = Box::cubic(1.0);
  const auto positions = jittered_bcc(static_cast<int>(state.range(0)), box);
  for (auto _ : state) {
    auto perm = spatial_sort_permutation(box, positions, 3.97);
    benchmark::DoNotOptimize(perm.data());
  }
  state.SetItemsProcessed(state.iterations() * positions.size());
}
BENCHMARK(BM_SpatialSortPermutation)->Arg(10);

// The per-update cost of each scatter-protection primitive, measured on
// the same random-index scatter pattern. This is the mechanism behind the
// Fig. 9 ordering: plain write < atomic < critical.
void scatter_benchmark(benchmark::State& state, int mode) {
  const std::size_t n = 1 << 16;
  std::vector<double> array(n, 0.0);
  Xoshiro256 rng(3);
  std::vector<std::uint32_t> idx(4096);
  for (auto& i : idx) i = static_cast<std::uint32_t>(rng.below(n));

  for (auto _ : state) {
    switch (mode) {
      case 0:
        for (std::uint32_t i : idx) array[i] += 1.0;
        break;
      case 1:
        for (std::uint32_t i : idx) {
#pragma omp atomic
          array[i] += 1.0;
        }
        break;
      case 2:
        for (std::uint32_t i : idx) {
#pragma omp critical(bench_scatter)
          array[i] += 1.0;
        }
        break;
    }
    benchmark::DoNotOptimize(array.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * idx.size());
}
void BM_ScatterPlain(benchmark::State& state) { scatter_benchmark(state, 0); }
void BM_ScatterAtomic(benchmark::State& state) { scatter_benchmark(state, 1); }
void BM_ScatterCritical(benchmark::State& state) {
  scatter_benchmark(state, 2);
}
BENCHMARK(BM_ScatterPlain);
BENCHMARK(BM_ScatterAtomic);
BENCHMARK(BM_ScatterCritical);

// Cost of one empty colored sweep = the pure synchronization overhead SDC
// pays per phase (colors x omp-for barriers).
void BM_ColorSweepBarrierOverhead(benchmark::State& state) {
  Box box = Box::cubic(1.0);
  const auto positions = jittered_bcc(10, box);
  SdcConfig cfg;
  cfg.dimensionality = static_cast<int>(state.range(0));
  SdcSchedule schedule(box, 3.97, cfg);
  schedule.rebuild(positions);
  const Partition& part = schedule.partition();

  for (auto _ : state) {
    std::size_t visited = 0;
#pragma omp parallel reduction(+ : visited)
    {
      for (int c = 0; c < part.color_count(); ++c) {
#pragma omp for schedule(static)
        for (std::size_t slot = part.color_begin(c);
             slot < part.color_end(c); ++slot) {
          visited += part.atoms_in_slot(slot).size();
        }
      }
    }
    benchmark::DoNotOptimize(visited);
  }
}
BENCHMARK(BM_ColorSweepBarrierOverhead)->Arg(1)->Arg(2)->Arg(3);

// One full EAM force evaluation per strategy (fixed small workload):
// the end-to-end cost the macro benches sweep.
void strategy_benchmark(benchmark::State& state, ReductionStrategy strategy) {
  static FinnisSinclair fe{FinnisSinclairParams::iron()};
  Box box = Box::cubic(1.0);
  const auto positions = jittered_bcc(8, box);

  NeighborListConfig nl_cfg;
  nl_cfg.cutoff = fe.cutoff();
  nl_cfg.skin = kSkin;
  nl_cfg.mode = required_mode(strategy);
  NeighborList list(box, nl_cfg);
  list.build(positions);

  EamForceConfig cfg;
  cfg.strategy = strategy;
  cfg.sdc.dimensionality = 2;
  EamForceComputer computer(fe, cfg);
  computer.attach_schedule(box, fe.cutoff() + kSkin);
  computer.on_neighbor_rebuild(positions);

  std::vector<double> rho(positions.size()), fp(positions.size());
  std::vector<Vec3> force(positions.size());
  for (auto _ : state) {
    auto result =
        computer.compute(box, positions, list, rho, fp, force);
    benchmark::DoNotOptimize(result.pair_energy);
  }
  state.SetItemsProcessed(state.iterations() * list.pair_count());
}
void BM_EamSerial(benchmark::State& s) {
  strategy_benchmark(s, ReductionStrategy::Serial);
}
void BM_EamAtomic(benchmark::State& s) {
  strategy_benchmark(s, ReductionStrategy::Atomic);
}
void BM_EamSap(benchmark::State& s) {
  strategy_benchmark(s, ReductionStrategy::ArrayPrivatization);
}
void BM_EamRc(benchmark::State& s) {
  strategy_benchmark(s, ReductionStrategy::RedundantComputation);
}
void BM_EamSdc(benchmark::State& s) {
  strategy_benchmark(s, ReductionStrategy::Sdc);
}
BENCHMARK(BM_EamSerial);
BENCHMARK(BM_EamAtomic);
BENCHMARK(BM_EamSap);
BENCHMARK(BM_EamRc);
BENCHMARK(BM_EamSdc);

// --- pair-cache A/B harness (ISSUE 3) --------------------------------------

struct AbMeasurement {
  double seconds_per_step = 0.0;
  double density_s = 0.0;  ///< per step; includes the zeroing sweep
  double embed_s = 0.0;
  double force_s = 0.0;
  std::size_t cache_bytes = 0;
};

AbMeasurement time_pair_cache(const EamPotential& pot, const Box& box,
                              const std::vector<Vec3>& positions,
                              const NeighborList& list,
                              ReductionStrategy strategy, bool use_cache,
                              int steps, int warmup) {
  EamForceConfig cfg;
  cfg.strategy = strategy;
  cfg.sdc.dimensionality = 2;
  cfg.use_pair_cache = use_cache;
  EamForceComputer computer(pot, cfg);
  computer.attach_schedule(box, pot.cutoff() + kSkin);
  computer.on_neighbor_rebuild(positions);

  const std::size_t n = positions.size();
  std::vector<double> rho(n), fp(n);
  std::vector<Vec3> force(n);
  for (int s = 0; s < warmup; ++s) {
    computer.compute(box, positions, list, rho, fp, force);
  }
  computer.reset_instrumentation();
  const double t0 = wall_time();
  for (int s = 0; s < steps; ++s) {
    auto result = computer.compute(box, positions, list, rho, fp, force);
    benchmark::DoNotOptimize(result.pair_energy);
  }
  AbMeasurement m;
  m.seconds_per_step = (wall_time() - t0) / steps;
  for (const auto& e : computer.timers().entries()) {
    const double per_step = e.seconds / steps;
    if (e.name == "density") m.density_s = per_step;
    if (e.name == "embed") m.embed_s = per_step;
    if (e.name == "force") m.force_s = per_step;
  }
  m.cache_bytes = computer.stats().pair_cache_bytes;
  return m;
}

int run_pair_cache_ab(int argc, char** argv) {
  CliParser cli("bench_micro",
                "pair-cache A/B: fused EAM step with the per-pair "
                "geometry/spline cache on vs off");
  cli.add_option("pair-cache", "ab", "on|off|ab (ab runs both)");
  cli.add_option("cells", "10", "bcc cells per box edge");
  cli.add_option("steps", "25", "timed force evaluations per config");
  cli.add_option("warmup", "5", "untimed evaluations before the clock");
  cli.add_option("strategy", "sdc", "serial|critical|atomic|locks|sap|sdc");
  cli.add_option("metrics-out", "", "write sdcmd.bench.v1 JSON here");
  if (!cli.parse(argc, argv)) return 1;

  const std::string mode = cli.get("pair-cache");
  if (mode != "on" && mode != "off" && mode != "ab") {
    std::fprintf(stderr, "--pair-cache must be on, off or ab (got %s)\n",
                 mode.c_str());
    return 1;
  }
  const int cells = cli.get_int("cells");
  const int steps = cli.get_int("steps");
  const int warmup = cli.get_int("warmup");
  const ReductionStrategy strategy = parse_strategy(cli.get("strategy"));

  // Tabulated iron so the devirtualized spline-table path is the one being
  // A/B'd - the production configuration the cache is built for.
  FinnisSinclair fe(FinnisSinclairParams::iron());
  const TabulatedEam tab = TabulatedEam::from_analytic(fe, 2000, 2000, 60.0);
  Box box = Box::cubic(1.0);
  const auto positions = jittered_bcc(cells, box);
  NeighborListConfig nl_cfg;
  nl_cfg.cutoff = tab.cutoff();
  nl_cfg.skin = kSkin;
  nl_cfg.mode = required_mode(strategy);
  NeighborList list(box, nl_cfg);
  list.build(positions);

  obs::BenchReport report("micro_pair_cache");
  report.set_context("cells", cells);
  report.set_context("atoms", positions.size());
  report.set_context("pairs", list.pair_count());
  report.set_context("steps", steps);
  report.set_context("warmup", warmup);
  report.set_context("strategy", to_string(strategy));
  report.set_context("potential", tab.name());
  report.set_context("hardware_threads", hardware_threads());

  std::printf("=== pair-cache A/B: %zu atoms, %zu pairs, %s, %s, %d steps\n",
              positions.size(), list.pair_count(),
              to_string(strategy).c_str(), thread_summary().c_str(), steps);

  AbMeasurement off, on;
  const bool run_off = mode != "on";
  const bool run_on = mode != "off";
  if (run_off) {
    off = time_pair_cache(tab, box, positions, list, strategy, false, steps,
                          warmup);
    std::printf("  pair_cache_off: %.6f s/step (density %.6f, embed %.6f, "
                "force %.6f)\n",
                off.seconds_per_step, off.density_s, off.embed_s,
                off.force_s);
  }
  if (run_on) {
    on = time_pair_cache(tab, box, positions, list, strategy, true, steps,
                         warmup);
    std::printf("  pair_cache_on:  %.6f s/step (density %.6f, embed %.6f, "
                "force %.6f), cache %.2f MiB\n",
                on.seconds_per_step, on.density_s, on.embed_s, on.force_s,
                static_cast<double>(on.cache_bytes) / (1024.0 * 1024.0));
  }
  const bool have_both = run_off && run_on;
  if (have_both) {
    std::printf("  step speedup %.3fx, force-phase speedup %.3fx\n",
                off.seconds_per_step / on.seconds_per_step,
                off.force_s / on.force_s);
  }

  auto add_row = [&](const char* name, const AbMeasurement& m,
                     bool baseline) {
    report.add_result(
        {{"case", std::string(name)},
         {"threads", max_threads()},
         {"seconds_per_step", m.seconds_per_step},
         {"density_seconds_per_step", m.density_s},
         {"embed_seconds_per_step", m.embed_s},
         {"force_seconds_per_step", m.force_s},
         {"cache_bytes", m.cache_bytes},
         {"speedup", have_both && !baseline
                         ? obs::JsonValue(off.seconds_per_step /
                                          m.seconds_per_step)
                         : obs::JsonValue(1.0)},
         {"force_speedup",
          have_both && !baseline ? obs::JsonValue(off.force_s / m.force_s)
                                 : obs::JsonValue(1.0)},
         {"feasible", true}});
  };
  if (run_off) add_row("pair_cache_off", off, /*baseline=*/true);
  if (run_on) add_row("pair_cache_on", on, /*baseline=*/!have_both);

  const std::string metrics_out = cli.get("metrics-out");
  if (!metrics_out.empty()) {
    if (report.write(metrics_out)) {
      std::printf("bench report: %zu result rows -> %s\n", report.results(),
                  metrics_out.c_str());
    } else {
      std::fprintf(stderr, "cannot open %s\n", metrics_out.c_str());
      return 1;
    }
  }
  // Exit 0 regardless of the measured speedup: CI boxes are too noisy to
  // gate on; the acceptance numbers live in EXPERIMENTS.md.
  return 0;
}

// --- SoA fast-path A/B harness (ISSUE 8) -----------------------------------

/// One timed configuration of the SoA A/B: per-phase wall clock plus
/// per-phase hardware counts (when perf_event_open is usable) so the
/// vectorization win is visible as an FP vector-vs-scalar op shift, not
/// just wall-clock.
struct SoaMeasurement {
  double seconds_per_step = 0.0;
  double phase_s[3] = {0.0, 0.0, 0.0};  ///< density, embed, force
  obs::HwCounts hw[3];
  std::size_t soa_steps = 0;
  double pad_fraction = 0.0;
};

SoaMeasurement time_soa(const EamPotential& pot, const Box& box,
                        const std::vector<Vec3>& positions,
                        const NeighborList& list, ReductionStrategy strategy,
                        bool use_soa, int steps, int warmup,
                        bool enable_hw) {
  EamForceConfig cfg;
  cfg.strategy = strategy;
  cfg.sdc.dimensionality = 2;
  cfg.use_soa_path = use_soa;
  // The A/B deliberately measures every strategy, including the half-list
  // ones whose production heuristic keeps the SoA path off.
  cfg.soa_half_lists = true;
  EamForceComputer computer(pot, cfg);
  computer.attach_schedule(box, pot.cutoff() + kSkin);
  computer.on_neighbor_rebuild(positions);
  if (enable_hw) computer.hw_profiler().set_enabled(true);

  const std::size_t n = positions.size();
  std::vector<double> rho(n), fp(n);
  std::vector<Vec3> force(n);
  for (int s = 0; s < warmup; ++s) {
    computer.compute(box, positions, list, rho, fp, force);
  }
  computer.reset_instrumentation();
  SoaMeasurement m;
  const double t0 = wall_time();
  for (int s = 0; s < steps; ++s) {
    auto result = computer.compute(box, positions, list, rho, fp, force);
    benchmark::DoNotOptimize(result.pair_energy);
    for (const auto& pt : computer.hw_profiler().phase_totals()) {
      if (pt.phase >= 0 && pt.phase < 3) m.hw[pt.phase].accumulate(pt.counts);
    }
  }
  m.seconds_per_step = (wall_time() - t0) / steps;
  for (const auto& e : computer.timers().entries()) {
    const double per_step = e.seconds / steps;
    if (e.name == "density") m.phase_s[0] = per_step;
    if (e.name == "embed") m.phase_s[1] = per_step;
    if (e.name == "force") m.phase_s[2] = per_step;
  }
  m.soa_steps = computer.stats().soa_steps;
  m.pad_fraction = computer.stats().soa_pad_fraction;
  return m;
}

int run_soa_ab(int argc, char** argv) {
  CliParser cli("bench_micro",
                "SoA fast-path A/B: fused EAM step through the SIMD "
                "structure-of-arrays path vs the scalar reference");
  cli.add_option("soa", "ab", "on|off|ab (ab runs both)");
  cli.add_option("cells", "10", "bcc cells per box edge");
  cli.add_option("steps", "25", "timed force evaluations per config");
  cli.add_option("warmup", "5", "untimed evaluations before the clock");
  cli.add_option("strategy", "rc",
                 "serial|critical|atomic|locks|sap|rc|sdc (default rc: the "
                 "full-list config the SoA path engages for in production)");
  cli.add_option("metrics-out", "", "write sdcmd.bench.v1 JSON here");
  if (!cli.parse(argc, argv)) return 1;

  const std::string mode = cli.get("soa");
  if (mode != "on" && mode != "off" && mode != "ab") {
    std::fprintf(stderr, "--soa must be on, off or ab (got %s)\n",
                 mode.c_str());
    return 1;
  }
  const int cells = cli.get_int("cells");
  const int steps = cli.get_int("steps");
  const int warmup = cli.get_int("warmup");
  const ReductionStrategy strategy = parse_strategy(cli.get("strategy"));

  // Tabulated iron: the SoA path requires packed spline tables, so this is
  // the configuration it actually accelerates in production.
  FinnisSinclair fe(FinnisSinclairParams::iron());
  const TabulatedEam tab = TabulatedEam::from_analytic(fe, 2000, 2000, 60.0);
  Box box = Box::cubic(1.0);
  const auto positions = jittered_bcc(cells, box);

  // One padded list shared by both configs (identical pair ordering; the
  // scalar path simply ignores the tiles). pad width comes from the
  // computer so the bench can't drift from the production gating.
  EamForceConfig probe_cfg;
  probe_cfg.strategy = strategy;
  probe_cfg.soa_half_lists = true;
  EamForceComputer probe(tab, probe_cfg);
  NeighborListConfig nl_cfg;
  nl_cfg.cutoff = tab.cutoff();
  nl_cfg.skin = kSkin;
  nl_cfg.mode = required_mode(strategy);
  nl_cfg.pad_width = probe.neighbor_pad_width();
  NeighborList list(box, nl_cfg);
  list.build(positions);

  const bool hw_probe = []() {
    obs::PerfPhaseProfiler p;
    p.set_enabled(true);
    return p.enabled();
  }();

  obs::BenchReport report("micro_soa_ab");
  report.set_context("cells", cells);
  report.set_context("atoms", positions.size());
  report.set_context("pairs", list.pair_count());
  report.set_context("steps", steps);
  report.set_context("warmup", warmup);
  report.set_context("strategy", to_string(strategy));
  report.set_context("potential", tab.name());
  report.set_context("hardware_threads", hardware_threads());
  report.set_context("pad_width", list.pad_width());
  report.set_context("hw_available", hw_probe ? 1 : 0);

  std::printf(
      "=== soa A/B: %zu atoms, %zu pairs, %s, %s, %d steps, pad_width %d\n",
      positions.size(), list.pair_count(), to_string(strategy).c_str(),
      thread_summary().c_str(), steps, list.pad_width());

  const double per_step_atoms = static_cast<double>(steps) *
                                static_cast<double>(positions.size());
  auto print_case = [&](const char* name, const SoaMeasurement& m) {
    std::printf("  %s: %.6f s/step (density %.6f, embed %.6f, force %.6f)\n",
                name, m.seconds_per_step, m.phase_s[0], m.phase_s[1],
                m.phase_s[2]);
    if (hw_probe) {
      const obs::HwCounts& f = m.hw[2];
      std::printf(
          "      force phase: %.1f cycles/atom, ipc %.3f, fp_scalar/atom "
          "%.1f, fp_vector/atom %.1f, fp_vec %.1f%%\n",
          f.cycles / per_step_atoms, f.ipc(), f.fp_scalar / per_step_atoms,
          f.fp_vector / per_step_atoms, 100.0 * f.fp_vector_frac());
    }
  };

  SoaMeasurement off, on;
  const bool run_off = mode != "on";
  const bool run_on = mode != "off";
  if (run_off) {
    off = time_soa(tab, box, positions, list, strategy, false, steps, warmup,
                   hw_probe);
    print_case("soa_off", off);
  }
  if (run_on) {
    on = time_soa(tab, box, positions, list, strategy, true, steps, warmup,
                  hw_probe);
    print_case("soa_on ", on);
    if (on.soa_steps == 0) {
      std::fprintf(stderr,
                   "warning: SoA path never engaged (soa_steps=0); the "
                   "\"on\" column measured the scalar path\n");
    } else {
      std::printf("      pad_fraction %.4f (soa engaged on %zu/%d steps)\n",
                  on.pad_fraction, on.soa_steps, steps);
    }
  }
  const bool have_both = run_off && run_on;
  if (have_both) {
    std::printf("  step speedup %.3fx, force-phase speedup %.3fx, "
                "density-phase speedup %.3fx\n",
                off.seconds_per_step / on.seconds_per_step,
                off.phase_s[2] / on.phase_s[2],
                off.phase_s[0] / on.phase_s[0]);
  }

  static const char* kPhaseNames[3] = {"density", "embed", "force"};
  auto add_row = [&](const char* name, const SoaMeasurement& m,
                     bool baseline) {
    obs::BenchReport::Row row{
        {"case", std::string(name)},
        {"threads", max_threads()},
        {"seconds_per_step", m.seconds_per_step},
        {"density_seconds_per_step", m.phase_s[0]},
        {"embed_seconds_per_step", m.phase_s[1]},
        {"force_seconds_per_step", m.phase_s[2]},
        {"soa_steps", m.soa_steps},
        {"soa_pad_fraction", m.pad_fraction},
        {"speedup", have_both && !baseline
                        ? obs::JsonValue(off.seconds_per_step /
                                         m.seconds_per_step)
                        : obs::JsonValue(1.0)},
        {"force_speedup", have_both && !baseline
                              ? obs::JsonValue(off.phase_s[2] / m.phase_s[2])
                              : obs::JsonValue(1.0)},
        {"feasible", true}};
    for (int p = 0; p < 3; ++p) {
      const obs::HwCounts& c = m.hw[p];
      const std::string prefix = std::string("hw.") + kPhaseNames[p];
      row.emplace_back(prefix + ".cycles_per_atom",
                       c.cycles / per_step_atoms);
      row.emplace_back(prefix + ".ipc", c.ipc());
      row.emplace_back(prefix + ".fp_scalar_per_atom",
                       c.fp_scalar / per_step_atoms);
      row.emplace_back(prefix + ".fp_vector_per_atom",
                       c.fp_vector / per_step_atoms);
      row.emplace_back(prefix + ".fp_vector_frac", c.fp_vector_frac());
    }
    report.add_result(std::move(row));
  };
  if (run_off) add_row("soa_off", off, /*baseline=*/true);
  if (run_on) add_row("soa_on", on, /*baseline=*/!have_both);

  const std::string metrics_out = cli.get("metrics-out");
  if (!metrics_out.empty()) {
    if (report.write(metrics_out)) {
      std::printf("bench report: %zu result rows -> %s\n", report.results(),
                  metrics_out.c_str());
    } else {
      std::fprintf(stderr, "cannot open %s\n", metrics_out.c_str());
      return 1;
    }
  }
  // Exit 0 regardless of the measured speedup (same policy as the
  // pair-cache A/B): acceptance numbers live in EXPERIMENTS.md.
  return 0;
}

// --- hardware-counter table mode (ISSUE 7) ---------------------------------

/// One full EAM workload profiled per-phase with perf_event_open: prints a
/// density/embed/force table (cycles/atom, IPC, cache-miss rate, and FP
/// vector fraction when the raw events opened) and writes the same numbers
/// as hw.* row columns in a sdcmd.bench.v1 report. Degrades to a
/// hw_available=0 report (timings only) when the syscall is denied.
int run_hw_counters(int argc, char** argv) {
  CliParser cli("bench_micro",
                "per-phase hardware-counter profile of the fused EAM step "
                "(perf_event_open)");
  cli.add_flag("hw-counters", "run the hardware-counter table mode");
  cli.add_option("cells", "10", "bcc cells per box edge");
  cli.add_option("steps", "25", "timed force evaluations");
  cli.add_option("warmup", "5", "untimed evaluations before the clock");
  cli.add_option("strategy", "sdc", "serial|critical|atomic|locks|sap|sdc");
  cli.add_option("soa", "on", "on|off: route the workload through the SoA "
                              "fast path (on) or the scalar reference (off)");
  cli.add_option("metrics-out", "", "write sdcmd.bench.v1 JSON here");
  if (!cli.parse(argc, argv)) return 1;

  const int cells = cli.get_int("cells");
  const int steps = cli.get_int("steps");
  const int warmup = cli.get_int("warmup");
  const ReductionStrategy strategy = parse_strategy(cli.get("strategy"));
  const std::string soa_mode = cli.get("soa");
  if (soa_mode != "on" && soa_mode != "off") {
    std::fprintf(stderr, "--soa must be on or off here (got %s); use "
                 "\"--soa ab\" without --hw-counters for the A/B harness\n",
                 soa_mode.c_str());
    return 1;
  }
  const bool use_soa = soa_mode == "on";

  FinnisSinclair fe(FinnisSinclairParams::iron());
  const TabulatedEam tab = TabulatedEam::from_analytic(fe, 2000, 2000, 60.0);
  Box box = Box::cubic(1.0);
  const auto positions = jittered_bcc(cells, box);
  EamForceConfig cfg;
  cfg.strategy = strategy;
  cfg.sdc.dimensionality = 2;
  cfg.use_soa_path = use_soa;
  cfg.soa_half_lists = true;  // profile whichever path was asked for
  EamForceComputer computer(tab, cfg);

  NeighborListConfig nl_cfg;
  nl_cfg.cutoff = tab.cutoff();
  nl_cfg.skin = kSkin;
  nl_cfg.mode = required_mode(strategy);
  nl_cfg.pad_width = computer.neighbor_pad_width();
  NeighborList list(box, nl_cfg);
  list.build(positions);
  computer.attach_schedule(box, tab.cutoff() + kSkin);
  computer.on_neighbor_rebuild(positions);
  computer.hw_profiler().set_enabled(true);
  const bool hw_available = computer.hw_profiler().enabled();

  const std::size_t n = positions.size();
  std::vector<double> rho(n), fp(n);
  std::vector<Vec3> force(n);
  for (int s = 0; s < warmup; ++s) {
    computer.compute(box, positions, list, rho, fp, force);
  }
  computer.reset_instrumentation();
  obs::HwCounts acc[3];
  for (int s = 0; s < steps; ++s) {
    auto result = computer.compute(box, positions, list, rho, fp, force);
    benchmark::DoNotOptimize(result.pair_energy);
    for (const auto& pt : computer.hw_profiler().phase_totals()) {
      if (pt.phase >= 0 && pt.phase < 3) acc[pt.phase].accumulate(pt.counts);
    }
  }
  double phase_seconds[3] = {0.0, 0.0, 0.0};
  for (const auto& e : computer.timers().entries()) {
    if (e.name == "density") phase_seconds[0] = e.seconds / steps;
    if (e.name == "embed") phase_seconds[1] = e.seconds / steps;
    if (e.name == "force") phase_seconds[2] = e.seconds / steps;
  }

  std::printf(
      "=== hw counters: %zu atoms, %zu pairs, %s, %s, %d steps, soa %s\n",
      n, list.pair_count(), to_string(strategy).c_str(),
      thread_summary().c_str(), steps, use_soa ? "on" : "off");
  if (!hw_available) {
    std::printf("  perf_event_open unavailable (paranoid=%d); "
                "hw.available=0, timings only\n",
                obs::PerfPhaseProfiler::paranoid_level());
  }

  obs::BenchReport report("micro_hw_counters");
  report.set_context("cells", cells);
  report.set_context("atoms", n);
  report.set_context("pairs", list.pair_count());
  report.set_context("steps", steps);
  report.set_context("warmup", warmup);
  report.set_context("strategy", to_string(strategy));
  report.set_context("threads", max_threads());
  report.set_context("hardware_threads", hardware_threads());
  report.set_context("soa", soa_mode);
  report.set_context("hw_available", hw_available ? 1 : 0);
  report.set_context("hw_paranoid_level",
                     obs::PerfPhaseProfiler::paranoid_level());

  const double per_step_atoms =
      static_cast<double>(steps) * static_cast<double>(n);
  static const char* kPhases[3] = {"density", "embed", "force"};
  std::printf("  %-8s %12s %12s %8s %10s %12s %12s %8s\n", "phase", "s/step",
              "cycles/atom", "ipc", "miss_rate", "fp_s/atom", "fp_v/atom",
              "fp_vec%");
  for (int p = 0; p < 3; ++p) {
    const obs::HwCounts& c = acc[p];
    const double cycles_per_atom =
        per_step_atoms > 0.0 ? c.cycles / per_step_atoms : 0.0;
    const double fp_scalar_per_atom =
        per_step_atoms > 0.0 ? c.fp_scalar / per_step_atoms : 0.0;
    const double fp_vector_per_atom =
        per_step_atoms > 0.0 ? c.fp_vector / per_step_atoms : 0.0;
    std::printf("  %-8s %12.6f %12.1f %8.3f %10.4f %12.1f %12.1f %8.2f\n",
                kPhases[p], phase_seconds[p], cycles_per_atom, c.ipc(),
                c.cache_miss_rate(), fp_scalar_per_atom, fp_vector_per_atom,
                100.0 * c.fp_vector_frac());
    report.add_result({{"case", std::string(kPhases[p])},
                       {"threads", max_threads()},
                       {"seconds_per_step", phase_seconds[p]},
                       {"hw.cycles_per_atom", cycles_per_atom},
                       {"hw.ipc", c.ipc()},
                       {"hw.cache_miss_rate", c.cache_miss_rate()},
                       {"hw.fp_scalar_per_atom", fp_scalar_per_atom},
                       {"hw.fp_vector_per_atom", fp_vector_per_atom},
                       {"hw.fp_vector_frac", c.fp_vector_frac()},
                       {"hw.available", hw_available ? 1 : 0},
                       {"feasible", true}});
  }

  const std::string metrics_out = cli.get("metrics-out");
  if (!metrics_out.empty()) {
    if (report.write(metrics_out)) {
      std::printf("bench report: %zu result rows -> %s\n", report.results(),
                  metrics_out.c_str());
    } else {
      std::fprintf(stderr, "cannot open %s\n", metrics_out.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // `--pair-cache ...` routes to the pair-cache A/B, `--hw-counters` to
  // the counter table, `--soa ...` to the SoA A/B; anything else goes to
  // google-benchmark as before. --hw-counters wins over --soa because the
  // counter table takes `--soa on|off` as a sub-option.
  bool has_pair_cache = false, has_hw = false, has_soa = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--pair-cache", 0) == 0) has_pair_cache = true;
    if (arg == "--hw-counters") has_hw = true;
    if (arg.rfind("--soa", 0) == 0) has_soa = true;
  }
  if (has_hw) return run_hw_counters(argc, argv);
  if (has_pair_cache) return run_pair_cache_ab(argc, argv);
  if (has_soa) return run_soa_ab(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
