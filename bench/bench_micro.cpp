// Kernel-level microbenchmarks (google-benchmark): the building blocks
// whose costs explain the macro results - potential evaluation, neighbor
// machinery, schedule construction, and the per-update cost of each
// synchronization primitive the strategies rely on.
#include <benchmark/benchmark.h>
#include <omp.h>

#include <vector>

#include "common/random.hpp"
#include "common/units.hpp"
#include "core/eam_force.hpp"
#include "core/sdc_schedule.hpp"
#include "geom/lattice.hpp"
#include "neighbor/neighbor_list.hpp"
#include "neighbor/reorder.hpp"
#include "potential/finnis_sinclair.hpp"
#include "potential/tabulated.hpp"

namespace {

using namespace sdcmd;

constexpr double kSkin = 0.4;

std::vector<Vec3> jittered_bcc(int cells, Box& box_out) {
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = units::kLatticeFe;
  spec.nx = spec.ny = spec.nz = cells;
  box_out = spec.box();
  auto positions = build_lattice(spec);
  Xoshiro256 rng(1);
  for (auto& r : positions) {
    r += Vec3{rng.normal(0.0, 0.05), rng.normal(0.0, 0.05),
              rng.normal(0.0, 0.05)};
    r = box_out.wrap(r);
  }
  return positions;
}

void BM_FsAnalyticEvaluation(benchmark::State& state) {
  FinnisSinclair fe(FinnisSinclairParams::iron());
  Xoshiro256 rng(2);
  std::vector<double> rs(1024);
  for (auto& r : rs) r = rng.uniform(2.0, 3.5);
  for (auto _ : state) {
    double acc = 0.0;
    for (double r : rs) {
      double v, dv, phi, dphi;
      fe.pair(r, v, dv);
      fe.density(r, phi, dphi);
      acc += v + phi;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * rs.size());
}
BENCHMARK(BM_FsAnalyticEvaluation);

void BM_TabulatedEvaluation(benchmark::State& state) {
  FinnisSinclair fe(FinnisSinclairParams::iron());
  const auto tab = TabulatedEam::from_analytic(fe, 2000, 2000, 60.0);
  Xoshiro256 rng(2);
  std::vector<double> rs(1024);
  for (auto& r : rs) r = rng.uniform(2.0, 3.5);
  for (auto _ : state) {
    double acc = 0.0;
    for (double r : rs) {
      double v, dv, phi, dphi;
      tab.pair(r, v, dv);
      tab.density(r, phi, dphi);
      acc += v + phi;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * rs.size());
}
BENCHMARK(BM_TabulatedEvaluation);

void BM_NeighborListBuild(benchmark::State& state) {
  Box box = Box::cubic(1.0);
  const auto positions = jittered_bcc(static_cast<int>(state.range(0)), box);
  NeighborListConfig cfg;
  cfg.cutoff = 3.569745;
  cfg.skin = kSkin;
  NeighborList list(box, cfg);
  for (auto _ : state) {
    list.build(positions);
    benchmark::DoNotOptimize(list.pair_count());
  }
  state.SetItemsProcessed(state.iterations() * positions.size());
}
BENCHMARK(BM_NeighborListBuild)->Arg(6)->Arg(10)->Arg(14);

void BM_SdcScheduleBuild(benchmark::State& state) {
  Box box = Box::cubic(1.0);
  const auto positions = jittered_bcc(static_cast<int>(state.range(0)), box);
  SdcConfig cfg;
  cfg.dimensionality = 2;
  SdcSchedule schedule(box, 3.569745 + kSkin, cfg);
  for (auto _ : state) {
    schedule.rebuild(positions);
    benchmark::DoNotOptimize(schedule.partition().atom_count());
  }
  state.SetItemsProcessed(state.iterations() * positions.size());
}
BENCHMARK(BM_SdcScheduleBuild)->Arg(10)->Arg(14);

void BM_SpatialSortPermutation(benchmark::State& state) {
  Box box = Box::cubic(1.0);
  const auto positions = jittered_bcc(static_cast<int>(state.range(0)), box);
  for (auto _ : state) {
    auto perm = spatial_sort_permutation(box, positions, 3.97);
    benchmark::DoNotOptimize(perm.data());
  }
  state.SetItemsProcessed(state.iterations() * positions.size());
}
BENCHMARK(BM_SpatialSortPermutation)->Arg(10);

// The per-update cost of each scatter-protection primitive, measured on
// the same random-index scatter pattern. This is the mechanism behind the
// Fig. 9 ordering: plain write < atomic < critical.
void scatter_benchmark(benchmark::State& state, int mode) {
  const std::size_t n = 1 << 16;
  std::vector<double> array(n, 0.0);
  Xoshiro256 rng(3);
  std::vector<std::uint32_t> idx(4096);
  for (auto& i : idx) i = static_cast<std::uint32_t>(rng.below(n));

  for (auto _ : state) {
    switch (mode) {
      case 0:
        for (std::uint32_t i : idx) array[i] += 1.0;
        break;
      case 1:
        for (std::uint32_t i : idx) {
#pragma omp atomic
          array[i] += 1.0;
        }
        break;
      case 2:
        for (std::uint32_t i : idx) {
#pragma omp critical(bench_scatter)
          array[i] += 1.0;
        }
        break;
    }
    benchmark::DoNotOptimize(array.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * idx.size());
}
void BM_ScatterPlain(benchmark::State& state) { scatter_benchmark(state, 0); }
void BM_ScatterAtomic(benchmark::State& state) { scatter_benchmark(state, 1); }
void BM_ScatterCritical(benchmark::State& state) {
  scatter_benchmark(state, 2);
}
BENCHMARK(BM_ScatterPlain);
BENCHMARK(BM_ScatterAtomic);
BENCHMARK(BM_ScatterCritical);

// Cost of one empty colored sweep = the pure synchronization overhead SDC
// pays per phase (colors x omp-for barriers).
void BM_ColorSweepBarrierOverhead(benchmark::State& state) {
  Box box = Box::cubic(1.0);
  const auto positions = jittered_bcc(10, box);
  SdcConfig cfg;
  cfg.dimensionality = static_cast<int>(state.range(0));
  SdcSchedule schedule(box, 3.97, cfg);
  schedule.rebuild(positions);
  const Partition& part = schedule.partition();

  for (auto _ : state) {
    std::size_t visited = 0;
#pragma omp parallel reduction(+ : visited)
    {
      for (int c = 0; c < part.color_count(); ++c) {
#pragma omp for schedule(static)
        for (std::size_t slot = part.color_begin(c);
             slot < part.color_end(c); ++slot) {
          visited += part.atoms_in_slot(slot).size();
        }
      }
    }
    benchmark::DoNotOptimize(visited);
  }
}
BENCHMARK(BM_ColorSweepBarrierOverhead)->Arg(1)->Arg(2)->Arg(3);

// One full EAM force evaluation per strategy (fixed small workload):
// the end-to-end cost the macro benches sweep.
void strategy_benchmark(benchmark::State& state, ReductionStrategy strategy) {
  static FinnisSinclair fe{FinnisSinclairParams::iron()};
  Box box = Box::cubic(1.0);
  const auto positions = jittered_bcc(8, box);

  NeighborListConfig nl_cfg;
  nl_cfg.cutoff = fe.cutoff();
  nl_cfg.skin = kSkin;
  nl_cfg.mode = required_mode(strategy);
  NeighborList list(box, nl_cfg);
  list.build(positions);

  EamForceConfig cfg;
  cfg.strategy = strategy;
  cfg.sdc.dimensionality = 2;
  EamForceComputer computer(fe, cfg);
  computer.attach_schedule(box, fe.cutoff() + kSkin);
  computer.on_neighbor_rebuild(positions);

  std::vector<double> rho(positions.size()), fp(positions.size());
  std::vector<Vec3> force(positions.size());
  for (auto _ : state) {
    auto result =
        computer.compute(box, positions, list, rho, fp, force);
    benchmark::DoNotOptimize(result.pair_energy);
  }
  state.SetItemsProcessed(state.iterations() * list.pair_count());
}
void BM_EamSerial(benchmark::State& s) {
  strategy_benchmark(s, ReductionStrategy::Serial);
}
void BM_EamAtomic(benchmark::State& s) {
  strategy_benchmark(s, ReductionStrategy::Atomic);
}
void BM_EamSap(benchmark::State& s) {
  strategy_benchmark(s, ReductionStrategy::ArrayPrivatization);
}
void BM_EamRc(benchmark::State& s) {
  strategy_benchmark(s, ReductionStrategy::RedundantComputation);
}
void BM_EamSdc(benchmark::State& s) {
  strategy_benchmark(s, ReductionStrategy::Sdc);
}
BENCHMARK(BM_EamSerial);
BENCHMARK(BM_EamAtomic);
BENCHMARK(BM_EamSap);
BENCHMARK(BM_EamRc);
BENCHMARK(BM_EamSdc);

}  // namespace
