// Reproduction of the paper's Section I workload claims:
//
//  * "the computation workload required by the embedded atom method is
//    nearly more than twice the workload of the pair-wise potential for
//    the same number of particles" - we time EAM vs a Lennard-Jones pair
//    potential with an identical cutoff (so both walk the same neighbor
//    list) and report the ratio;
//
//  * "EAM method requires extra memory space to store electron densities
//    and its derivative of all atoms" - we account those arrays exactly.
//
// Also prints the per-phase breakdown (density / embedding / force), which
// motivates why the paper parallelizes phases 1 and 3 with SDC and phase 2
// with a plain `parallel for`.
#include <cstdio>

#include "benchsupport/cases.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "common/units.hpp"
#include "core/eam_force.hpp"
#include "core/pair_force.hpp"
#include "geom/lattice.hpp"
#include "potential/finnis_sinclair.hpp"
#include "potential/lennard_jones.hpp"

int main() {
  using namespace sdcmd;
  using namespace sdcmd::bench;

  const Scale scale = scale_from_env();
  const int steps = std::max(2, steps_from_env());
  const auto cases = paper_cases(scale);

  FinnisSinclair iron(FinnisSinclairParams::iron());
  // LJ with the same cutoff: identical neighbor lists, so the timing ratio
  // isolates the per-pair and per-phase work, not the list sizes.
  LennardJones lj(0.4, 2.2, iron.cutoff());

  std::printf("=== Section I: EAM vs pair-potential workload (scale %s)\n\n",
              to_string(scale).c_str());

  AsciiTable table({"case", "atoms", "pair s/step", "EAM s/step", "ratio",
                    "EAM extra MiB"});

  for (const TestCase& test_case : cases) {
    LatticeSpec spec = test_case.lattice();
    const Box box = spec.box();
    const auto positions = build_lattice(spec);
    const std::size_t n = positions.size();

    NeighborListConfig nl_cfg;
    nl_cfg.cutoff = iron.cutoff();
    nl_cfg.skin = 0.4;
    NeighborList list(box, nl_cfg);
    list.build(positions);

    // Pair potential: one computational phase.
    PairForceConfig pair_cfg;
    pair_cfg.strategy = ReductionStrategy::Serial;
    PairForceComputer pair_computer(lj, pair_cfg);
    std::vector<Vec3> force(n);
    pair_computer.compute(box, positions, list, force);  // warmup
    Stopwatch pair_watch;
    pair_watch.start();
    for (int s = 0; s < steps; ++s) {
      pair_computer.compute(box, positions, list, force);
    }
    const double pair_time = pair_watch.stop() / steps;

    // EAM: three phases.
    EamForceConfig eam_cfg;
    eam_cfg.strategy = ReductionStrategy::Serial;
    EamForceComputer eam_computer(iron, eam_cfg);
    std::vector<double> rho(n), fp(n);
    eam_computer.compute(box, positions, list, rho, fp, force);  // warmup
    Stopwatch eam_watch;
    eam_watch.start();
    for (int s = 0; s < steps; ++s) {
      eam_computer.compute(box, positions, list, rho, fp, force);
    }
    const double eam_time = eam_watch.stop() / steps;

    // rho + fp: the EAM-only per-atom state the paper highlights.
    const double extra_mib =
        static_cast<double>(2 * n * sizeof(double)) / (1024.0 * 1024.0);

    table.add_row({test_case.name, std::to_string(n),
                   AsciiTable::fmt(pair_time, 4),
                   AsciiTable::fmt(eam_time, 4),
                   AsciiTable::fmt(eam_time / pair_time, 2),
                   AsciiTable::fmt(extra_mib, 2)});

    if (&test_case == &cases.back()) {
      std::printf("per-phase breakdown (case %s, serial):\n",
                  test_case.name.c_str());
      for (const auto& e : eam_computer.timers().entries()) {
        std::printf("  %-8s %8.4f s (%4.1f%%)\n", e.name.c_str(), e.seconds,
                    100.0 * e.seconds / eam_computer.timers().total());
      }
      std::printf("\n");
    }
  }

  std::printf("%s\n", table.render().c_str());
  std::printf(
      "paper claim: EAM workload is ~2x the pair-wise potential; the\n"
      "density phase alone is comparable to the entire pair computation.\n");
  return 0;
}
