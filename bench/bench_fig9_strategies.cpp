// Reproduction of the paper's Fig. 9: speedup curves of the 2-D SDC method
// versus the competing irregular-reduction strategies - Critical Section
// (CS), Shared Array Privatization (SAP) and Redundant Computations (RC) -
// on all four test cases. We additionally report the per-scalar Atomic
// variant (a modern refinement the 2009 paper folds into class 1).
//
// Flags (see --help; each falls back to its environment variable):
//   --scale tiny|laptop|desktop|paper     (SDCMD_BENCH_SCALE,   laptop)
//   --threads 2,3,4                       (SDCMD_BENCH_THREADS, 2,3,4,8,12,16)
//   --steps N                             (SDCMD_BENCH_STEPS,   3)
//   --csv-dir DIR                         (SDCMD_BENCH_CSV_DIR, .)
//   --metrics-out FILE    versioned sdcmd.bench.v1 JSON results
//   --hw-counters         strategy x hardware-counter table (ISSUE 7)
//                         instead of the speedup sweep: per-strategy IPC,
//                         cache-miss rate and cycles/atom for the density
//                         and force phases at the sweep's max thread count
//   --void-drill          load-imbalance drill (ISSUE 10): carve a
//                         spherical void out of the smallest case and A/B
//                         the barriered shapes (SDC, SAP) against the
//                         work-stealing cell-task shape, checking every
//                         strategy's forces against serial at 1e-12
//
// Expected shape (paper, 16 cores): SDC > RC > SAP > CS at high thread
// counts; CS collapses below 1; SAP peaks around 8 threads then degrades;
// RC is near-linear but ~1.7x behind SDC because it does the pair work
// twice. See the Table 1 bench header for the few-core host caveat.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "benchsupport/cases.hpp"
#include "benchsupport/sweep.hpp"
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "common/threads.hpp"
#include "obs/bench_report.hpp"
#include "potential/finnis_sinclair.hpp"

int main(int argc, char** argv) {
  using namespace sdcmd;
  using namespace sdcmd::bench;

  CliParser cli("bench_fig9_strategies",
                "Fig. 9 reproduction: reduction-strategy speedup curves");
  cli.add_option("scale", "", "tiny|laptop|desktop|paper (default: env)");
  cli.add_option("threads", "", "comma list, e.g. 2,4,8 (default: env)");
  cli.add_option("steps", "", "timed steps per configuration (default: env)");
  cli.add_option("csv-dir", "", "CSV output directory (default: env or .)");
  cli.add_option("metrics-out", "", "write sdcmd.bench.v1 JSON here");
  cli.add_flag("hw-counters",
               "strategy x hw-counter table instead of the speedup sweep");
  cli.add_flag("void-drill",
               "carved-void load-imbalance drill instead of the sweep");
  if (!cli.parse(argc, argv)) return 1;

  const Scale scale = cli.get("scale").empty() ? scale_from_env()
                                               : parse_scale(cli.get("scale"));
  const auto cases = paper_cases(scale);
  const auto threads = cli.get("threads").empty()
                           ? thread_sweep_from_env()
                           : cli.get_int_list("threads");
  const int steps =
      cli.get("steps").empty() ? steps_from_env() : cli.get_int("steps");
  FinnisSinclair iron(FinnisSinclairParams::iron());

  const ReductionStrategy strategies[] = {
      ReductionStrategy::Critical,          ReductionStrategy::Atomic,
      ReductionStrategy::LockStriped,       ReductionStrategy::ArrayPrivatization,
      ReductionStrategy::RedundantComputation, ReductionStrategy::Sdc,
      ReductionStrategy::CellTask};

  const char* csv_env = std::getenv("SDCMD_BENCH_CSV_DIR");
  const std::string csv_dir =
      !cli.get("csv-dir").empty() ? cli.get("csv-dir")
                                  : (csv_env != nullptr ? csv_env : ".");
  CsvWriter csv(csv_dir + "/fig9_strategies.csv",
                {"case", "atoms", "strategy", "threads", "seconds_per_step",
                 "speedup", "pair_visits", "private_bytes"});

  obs::BenchReport report("fig9_strategies");
  report.set_context("scale", to_string(scale));
  report.set_context("steps", steps);
  report.set_context("hardware_threads", hardware_threads());
  {
    std::string sweep;
    for (int t : threads) {
      if (!sweep.empty()) sweep += ',';
      sweep += std::to_string(t);
    }
    report.set_context("thread_sweep", sweep);
  }

  if (cli.get_bool("void-drill")) {
    // ISSUE 10 drill: a carved void makes the spatial load non-uniform, so
    // every barriered decomposition (SDC colors, SAP's implicit join) waits
    // for whichever worker drew the fullest region each sweep, while the
    // work-stealing cell-task shape rebalances at task granularity. The
    // drill A/Bs the three shapes on the smallest case at the sweep's max
    // thread count and gates each strategy's forces against the serial
    // reference at 1e-12 (abs, per component).
    constexpr double kVoidRadiusFraction = 0.3;
    constexpr double kForceTolerance = 1e-12;
    int drill_threads = 1;
    for (int t : threads) drill_threads = std::max(drill_threads, t);

    // Largest case at the scale: the smaller ones cannot feed every thread
    // one SDC subdomain per color, and an infeasible SDC row would gut the
    // A/B comparison the drill exists for.
    const TestCase& test_case = cases.back();
    CaseRunner runner(test_case, iron);
    const std::size_t removed = runner.carve_void(kVoidRadiusFraction);
    const std::size_t atoms = runner.system().size();
    report.set_context("mode", "void_drill");
    report.set_context("void_radius_fraction", kVoidRadiusFraction);
    report.set_context("void_atoms_removed", static_cast<std::int64_t>(removed));
    report.set_context("drill_threads", drill_threads);

    std::printf(
        "=== carved-void load-imbalance drill "
        "(case %s, %zu atoms after carving %zu, %d threads, %d steps)\n\n",
        test_case.name.c_str(), atoms, removed, drill_threads, steps);

    const double serial = runner.serial_seconds_per_step(steps);
    const std::vector<Vec3> reference = runner.system().atoms().force;

    const ReductionStrategy drill_strategies[] = {
        ReductionStrategy::Sdc, ReductionStrategy::ArrayPrivatization,
        ReductionStrategy::CellTask};

    AsciiTable table({"strategy", "s/step", "speedup", "imbalance",
                      "task/step", "steals", "busy_min", "max|dF|"});
    const auto sci = [](double v) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1e", v);
      return std::string(buf);
    };
    bool forces_ok = true;
    for (ReductionStrategy strategy : drill_strategies) {
      EamForceConfig cfg;
      cfg.strategy = strategy;
      cfg.sdc.dimensionality = 2;
      SweepInstrumentation instr;  // sweep profiler only: no sinks
      const auto timing =
          runner.time_strategy(cfg, drill_threads, steps, &instr);
      double max_dev = 0.0;
      if (timing) {
        const auto& force = runner.system().atoms().force;
        for (std::size_t i = 0; i < force.size(); ++i) {
          max_dev = std::max({max_dev, std::abs(force[i].x - reference[i].x),
                              std::abs(force[i].y - reference[i].y),
                              std::abs(force[i].z - reference[i].z)});
        }
        if (max_dev > kForceTolerance) forces_ok = false;
      }
      table.add_row(
          {to_string(strategy),
           timing ? AsciiTable::fmt(timing->density_force_seconds, 6) : "-",
           format_speedup(timing ? std::optional<double>(
                                       serial / timing->density_force_seconds)
                                 : std::nullopt),
           timing ? AsciiTable::fmt(timing->sweep_imbalance, 3) : "-",
           timing ? std::to_string(timing->task_spawned) : "-",
           timing ? std::to_string(timing->task_steals) : "-",
           timing ? AsciiTable::fmt(timing->task_busy_min, 3) : "-",
           timing ? sci(max_dev) : "-"});
      report.add_result(
          {{"case", test_case.name},
           {"atoms", atoms},
           {"strategy", to_string(strategy)},
           {"threads", drill_threads},
           {"serial_seconds_per_step", serial},
           {"seconds_per_step",
            timing ? obs::JsonValue(timing->density_force_seconds)
                   : obs::JsonValue()},
           {"speedup", timing ? obs::JsonValue(
                                    serial / timing->density_force_seconds)
                              : obs::JsonValue()},
           {"sweep.imbalance", timing ? obs::JsonValue(timing->sweep_imbalance)
                                      : obs::JsonValue()},
           {"task.spawned", timing ? obs::JsonValue(static_cast<std::int64_t>(
                                         timing->task_spawned))
                                   : obs::JsonValue()},
           {"task.steals", timing ? obs::JsonValue(static_cast<std::int64_t>(
                                        timing->task_steals))
                                  : obs::JsonValue()},
           {"task.max_queue_depth",
            timing ? obs::JsonValue(
                         static_cast<std::int64_t>(timing->task_max_queue_depth))
                   : obs::JsonValue()},
           {"task.busy_min", timing ? obs::JsonValue(timing->task_busy_min)
                                    : obs::JsonValue()},
           {"task.busy_mean", timing ? obs::JsonValue(timing->task_busy_mean)
                                     : obs::JsonValue()},
           {"force_max_dev", timing ? obs::JsonValue(max_dev)
                                    : obs::JsonValue()},
           {"forces_ok", timing ? obs::JsonValue(max_dev <= kForceTolerance)
                                : obs::JsonValue()},
           {"feasible", timing.has_value()}});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "mechanism check: the void empties some SDC subdomains, so the\n"
        "fullest color member paces every barrier (imbalance > 1); the\n"
        "cell-task shape has no color barriers and its busy_min should sit\n"
        "near 1.0 with steals > 0 on the crowded side of the box.\n");

    const std::string metrics_out = cli.get("metrics-out");
    if (!metrics_out.empty()) {
      if (report.write(metrics_out)) {
        std::printf("bench report: %zu result rows -> %s\n", report.results(),
                    metrics_out.c_str());
      } else {
        std::fprintf(stderr, "cannot open %s\n", metrics_out.c_str());
        return 1;
      }
    }
    if (!forces_ok) {
      std::fprintf(stderr,
                   "FAIL: a strategy's forces deviate from serial by more "
                   "than %g\n",
                   kForceTolerance);
      return 1;
    }
    return 0;
  }

  if (cli.get_bool("hw-counters")) {
    // ISSUE 7 table mode: hardware counters per strategy at one thread
    // count (the sweep's max). Uses the instrumented (profiled-sweep)
    // variant, so the timings here are not publication numbers - the point
    // is the per-phase IPC / miss-rate / cycles-per-atom comparison.
    int hw_threads = 1;
    for (int t : threads) hw_threads = std::max(hw_threads, t);
    const bool hw_available = obs::PerfPhaseProfiler::available();
    report.set_context("hw_available", hw_available ? 1 : 0);
    report.set_context("hw_paranoid_level",
                       obs::PerfPhaseProfiler::paranoid_level());
    std::printf(
        "=== strategy x hw counters (scale %s, %d threads, %d steps)\n",
        to_string(scale).c_str(), hw_threads, steps);
    if (!hw_available) {
      std::printf("perf_event_open unavailable (paranoid=%d); "
                  "hw columns will be empty\n",
                  obs::PerfPhaseProfiler::paranoid_level());
    }
    std::printf("\n");

    static const char* kHwPhases[3] = {"density", "embed", "force"};
    for (const TestCase& test_case : cases) {
      CaseRunner runner(test_case, iron);
      std::printf("--- case %s: %zu atoms\n", test_case.name.c_str(),
                  test_case.atom_count());
      AsciiTable table({"strategy", "dens.ipc", "dens.miss", "dens.cyc/at",
                        "force.ipc", "force.miss", "force.cyc/at"});
      for (ReductionStrategy strategy : strategies) {
        EamForceConfig cfg;
        cfg.strategy = strategy;
        cfg.sdc.dimensionality = 2;
        SweepInstrumentation instr;
        instr.hw_counters = true;
        const auto timing =
            runner.time_strategy(cfg, hw_threads, steps, &instr);
        std::vector<std::string> row{to_string(strategy)};
        const bool hw = timing.has_value() && timing->hw_valid;
        const double per_step_atoms =
            static_cast<double>(steps) *
            static_cast<double>(test_case.atom_count());
        for (int p : {0, 2}) {
          row.push_back(hw ? AsciiTable::fmt(timing->hw[p].ipc(), 3) : "-");
          row.push_back(
              hw ? AsciiTable::fmt(timing->hw[p].cache_miss_rate(), 4) : "-");
          row.push_back(
              hw ? AsciiTable::fmt(timing->hw[p].cycles / per_step_atoms, 1)
                 : "-");
        }
        table.add_row(std::move(row));
        obs::BenchReport::Row report_row{
            {"case", test_case.name},
            {"atoms", test_case.atom_count()},
            {"strategy", to_string(strategy)},
            {"threads", hw_threads},
            {"seconds_per_step",
             timing ? obs::JsonValue(timing->density_force_seconds)
                    : obs::JsonValue()},
            {"hw.available", hw ? 1 : 0},
            {"feasible", timing.has_value()}};
        for (int p = 0; p < 3; ++p) {
          const std::string prefix = std::string("hw.") + kHwPhases[p];
          report_row.push_back(
              {prefix + ".ipc",
               hw ? obs::JsonValue(timing->hw[p].ipc()) : obs::JsonValue()});
          report_row.push_back(
              {prefix + ".cache_miss_rate",
               hw ? obs::JsonValue(timing->hw[p].cache_miss_rate())
                  : obs::JsonValue()});
          report_row.push_back(
              {prefix + ".cycles_per_atom",
               hw ? obs::JsonValue(timing->hw[p].cycles / per_step_atoms)
                  : obs::JsonValue()});
        }
        report.add_result(std::move(report_row));
      }
      std::printf("%s\n", table.render().c_str());
    }

    const std::string metrics_out = cli.get("metrics-out");
    if (!metrics_out.empty()) {
      if (report.write(metrics_out)) {
        std::printf("bench report: %zu result rows -> %s\n",
                    report.results(), metrics_out.c_str());
      } else {
        std::fprintf(stderr, "cannot open %s\n", metrics_out.c_str());
        return 1;
      }
    }
    return 0;
  }

  std::printf(
      "=== Fig. 9: strategy speedup curves (scale %s, %s, %d steps)\n\n",
      to_string(scale).c_str(), thread_summary().c_str(), steps);

  for (const TestCase& test_case : cases) {
    CaseRunner runner(test_case, iron);
    const double serial = runner.serial_seconds_per_step(steps);
    std::printf("--- case %s: %zu atoms, serial density+force %.4f s/step\n",
                test_case.name.c_str(), test_case.atom_count(), serial);

    std::vector<std::string> headers{"speedup"};
    for (int t : threads) headers.push_back(std::to_string(t));
    AsciiTable table(headers);

    for (ReductionStrategy strategy : strategies) {
      std::vector<std::string> row{to_string(strategy)};
      for (int t : threads) {
        EamForceConfig cfg;
        cfg.strategy = strategy;
        cfg.sdc.dimensionality = 2;
        const auto timing = runner.time_strategy(cfg, t, steps);
        row.push_back(format_speedup(
            timing ? std::optional<double>(serial /
                                           timing->density_force_seconds)
                   : std::nullopt));
        csv.add_row(
            {test_case.name, std::to_string(test_case.atom_count()),
             to_string(strategy), std::to_string(t),
             timing ? AsciiTable::fmt(timing->density_force_seconds, 6) : "",
             timing
                 ? AsciiTable::fmt(serial / timing->density_force_seconds, 3)
                 : "",
             timing ? std::to_string(timing->pair_visits) : "",
             timing ? std::to_string(timing->private_bytes) : ""});
        report.add_result(
            {{"case", test_case.name},
             {"atoms", test_case.atom_count()},
             {"strategy", to_string(strategy)},
             {"threads", t},
             {"serial_seconds_per_step", serial},
             {"seconds_per_step",
              timing ? obs::JsonValue(timing->density_force_seconds)
                     : obs::JsonValue()},
             {"speedup",
              timing
                  ? obs::JsonValue(serial / timing->density_force_seconds)
                  : obs::JsonValue()},
             {"pair_visits", timing ? obs::JsonValue(timing->pair_visits)
                                    : obs::JsonValue()},
             {"private_bytes", timing ? obs::JsonValue(timing->private_bytes)
                                      : obs::JsonValue()},
             {"feasible", timing.has_value()}});
      }
      table.add_row(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());
  }

  const std::string metrics_out = cli.get("metrics-out");
  if (!metrics_out.empty()) {
    if (report.write(metrics_out)) {
      std::printf("bench report: %zu result rows -> %s\n", report.results(),
                  metrics_out.c_str());
    } else {
      std::fprintf(stderr, "cannot open %s\n", metrics_out.c_str());
      return 1;
    }
  }

  std::printf(
      "mechanism check (independent of core count):\n"
      "  RC pair visits per step are 2x every other strategy (full lists);\n"
      "  SAP allocates threads x N replicas; SDC allocates none.\n"
      "paper reference (large case 4, 16 cores): SDC ~12.4, RC ~7,\n"
      "SAP ~4 (peaks near 8 cores), CS < 1.\n");
  return 0;
}
