// Reproduction of the paper's Fig. 9: speedup curves of the 2-D SDC method
// versus the competing irregular-reduction strategies - Critical Section
// (CS), Shared Array Privatization (SAP) and Redundant Computations (RC) -
// on all four test cases. We additionally report the per-scalar Atomic
// variant (a modern refinement the 2009 paper folds into class 1).
//
// Expected shape (paper, 16 cores): SDC > RC > SAP > CS at high thread
// counts; CS collapses below 1; SAP peaks around 8 threads then degrades;
// RC is near-linear but ~1.7x behind SDC because it does the pair work
// twice. See the Table 1 bench header for the few-core host caveat.
#include <cstdio>
#include <cstdlib>

#include "benchsupport/cases.hpp"
#include "benchsupport/sweep.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "common/threads.hpp"
#include "potential/finnis_sinclair.hpp"

int main() {
  using namespace sdcmd;
  using namespace sdcmd::bench;

  const Scale scale = scale_from_env();
  const auto cases = paper_cases(scale);
  const auto threads = thread_sweep_from_env();
  const int steps = steps_from_env();
  FinnisSinclair iron(FinnisSinclairParams::iron());

  const ReductionStrategy strategies[] = {
      ReductionStrategy::Critical,          ReductionStrategy::Atomic,
      ReductionStrategy::LockStriped,       ReductionStrategy::ArrayPrivatization,
      ReductionStrategy::RedundantComputation, ReductionStrategy::Sdc};

  const char* csv_dir = std::getenv("SDCMD_BENCH_CSV_DIR");
  CsvWriter csv(std::string(csv_dir ? csv_dir : ".") + "/fig9_strategies.csv",
                {"case", "atoms", "strategy", "threads", "seconds_per_step",
                 "speedup", "pair_visits", "private_bytes"});

  std::printf(
      "=== Fig. 9: strategy speedup curves (scale %s, %s, %d steps)\n\n",
      to_string(scale).c_str(), thread_summary().c_str(), steps);

  for (const TestCase& test_case : cases) {
    CaseRunner runner(test_case, iron);
    const double serial = runner.serial_seconds_per_step(steps);
    std::printf("--- case %s: %zu atoms, serial density+force %.4f s/step\n",
                test_case.name.c_str(), test_case.atom_count(), serial);

    std::vector<std::string> headers{"speedup"};
    for (int t : threads) headers.push_back(std::to_string(t));
    AsciiTable table(headers);

    for (ReductionStrategy strategy : strategies) {
      std::vector<std::string> row{to_string(strategy)};
      for (int t : threads) {
        EamForceConfig cfg;
        cfg.strategy = strategy;
        cfg.sdc.dimensionality = 2;
        const auto timing = runner.time_strategy(cfg, t, steps);
        row.push_back(format_speedup(
            timing ? std::optional<double>(serial /
                                           timing->density_force_seconds)
                   : std::nullopt));
        csv.add_row(
            {test_case.name, std::to_string(test_case.atom_count()),
             to_string(strategy), std::to_string(t),
             timing ? AsciiTable::fmt(timing->density_force_seconds, 6) : "",
             timing
                 ? AsciiTable::fmt(serial / timing->density_force_seconds, 3)
                 : "",
             timing ? std::to_string(timing->pair_visits) : "",
             timing ? std::to_string(timing->private_bytes) : ""});
      }
      table.add_row(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());
  }

  std::printf(
      "mechanism check (independent of core count):\n"
      "  RC pair visits per step are 2x every other strategy (full lists);\n"
      "  SAP allocates threads x N replicas; SDC allocates none.\n"
      "paper reference (large case 4, 16 cores): SDC ~12.4, RC ~7,\n"
      "SAP ~4 (peaks near 8 cores), CS < 1.\n");
  return 0;
}
