// Reproduction of the paper's Fig. 9: speedup curves of the 2-D SDC method
// versus the competing irregular-reduction strategies - Critical Section
// (CS), Shared Array Privatization (SAP) and Redundant Computations (RC) -
// on all four test cases. We additionally report the per-scalar Atomic
// variant (a modern refinement the 2009 paper folds into class 1).
//
// Flags (see --help; each falls back to its environment variable):
//   --scale tiny|laptop|desktop|paper     (SDCMD_BENCH_SCALE,   laptop)
//   --threads 2,3,4                       (SDCMD_BENCH_THREADS, 2,3,4,8,12,16)
//   --steps N                             (SDCMD_BENCH_STEPS,   3)
//   --csv-dir DIR                         (SDCMD_BENCH_CSV_DIR, .)
//   --metrics-out FILE    versioned sdcmd.bench.v1 JSON results
//
// Expected shape (paper, 16 cores): SDC > RC > SAP > CS at high thread
// counts; CS collapses below 1; SAP peaks around 8 threads then degrades;
// RC is near-linear but ~1.7x behind SDC because it does the pair work
// twice. See the Table 1 bench header for the few-core host caveat.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "benchsupport/cases.hpp"
#include "benchsupport/sweep.hpp"
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "common/threads.hpp"
#include "obs/bench_report.hpp"
#include "potential/finnis_sinclair.hpp"

int main(int argc, char** argv) {
  using namespace sdcmd;
  using namespace sdcmd::bench;

  CliParser cli("bench_fig9_strategies",
                "Fig. 9 reproduction: reduction-strategy speedup curves");
  cli.add_option("scale", "", "tiny|laptop|desktop|paper (default: env)");
  cli.add_option("threads", "", "comma list, e.g. 2,4,8 (default: env)");
  cli.add_option("steps", "", "timed steps per configuration (default: env)");
  cli.add_option("csv-dir", "", "CSV output directory (default: env or .)");
  cli.add_option("metrics-out", "", "write sdcmd.bench.v1 JSON here");
  if (!cli.parse(argc, argv)) return 1;

  const Scale scale = cli.get("scale").empty() ? scale_from_env()
                                               : parse_scale(cli.get("scale"));
  const auto cases = paper_cases(scale);
  const auto threads = cli.get("threads").empty()
                           ? thread_sweep_from_env()
                           : cli.get_int_list("threads");
  const int steps =
      cli.get("steps").empty() ? steps_from_env() : cli.get_int("steps");
  FinnisSinclair iron(FinnisSinclairParams::iron());

  const ReductionStrategy strategies[] = {
      ReductionStrategy::Critical,          ReductionStrategy::Atomic,
      ReductionStrategy::LockStriped,       ReductionStrategy::ArrayPrivatization,
      ReductionStrategy::RedundantComputation, ReductionStrategy::Sdc};

  const char* csv_env = std::getenv("SDCMD_BENCH_CSV_DIR");
  const std::string csv_dir =
      !cli.get("csv-dir").empty() ? cli.get("csv-dir")
                                  : (csv_env != nullptr ? csv_env : ".");
  CsvWriter csv(csv_dir + "/fig9_strategies.csv",
                {"case", "atoms", "strategy", "threads", "seconds_per_step",
                 "speedup", "pair_visits", "private_bytes"});

  obs::BenchReport report("fig9_strategies");
  report.set_context("scale", to_string(scale));
  report.set_context("steps", steps);
  report.set_context("hardware_threads", hardware_threads());
  {
    std::string sweep;
    for (int t : threads) {
      if (!sweep.empty()) sweep += ',';
      sweep += std::to_string(t);
    }
    report.set_context("thread_sweep", sweep);
  }

  std::printf(
      "=== Fig. 9: strategy speedup curves (scale %s, %s, %d steps)\n\n",
      to_string(scale).c_str(), thread_summary().c_str(), steps);

  for (const TestCase& test_case : cases) {
    CaseRunner runner(test_case, iron);
    const double serial = runner.serial_seconds_per_step(steps);
    std::printf("--- case %s: %zu atoms, serial density+force %.4f s/step\n",
                test_case.name.c_str(), test_case.atom_count(), serial);

    std::vector<std::string> headers{"speedup"};
    for (int t : threads) headers.push_back(std::to_string(t));
    AsciiTable table(headers);

    for (ReductionStrategy strategy : strategies) {
      std::vector<std::string> row{to_string(strategy)};
      for (int t : threads) {
        EamForceConfig cfg;
        cfg.strategy = strategy;
        cfg.sdc.dimensionality = 2;
        const auto timing = runner.time_strategy(cfg, t, steps);
        row.push_back(format_speedup(
            timing ? std::optional<double>(serial /
                                           timing->density_force_seconds)
                   : std::nullopt));
        csv.add_row(
            {test_case.name, std::to_string(test_case.atom_count()),
             to_string(strategy), std::to_string(t),
             timing ? AsciiTable::fmt(timing->density_force_seconds, 6) : "",
             timing
                 ? AsciiTable::fmt(serial / timing->density_force_seconds, 3)
                 : "",
             timing ? std::to_string(timing->pair_visits) : "",
             timing ? std::to_string(timing->private_bytes) : ""});
        report.add_result(
            {{"case", test_case.name},
             {"atoms", test_case.atom_count()},
             {"strategy", to_string(strategy)},
             {"threads", t},
             {"serial_seconds_per_step", serial},
             {"seconds_per_step",
              timing ? obs::JsonValue(timing->density_force_seconds)
                     : obs::JsonValue()},
             {"speedup",
              timing
                  ? obs::JsonValue(serial / timing->density_force_seconds)
                  : obs::JsonValue()},
             {"pair_visits", timing ? obs::JsonValue(timing->pair_visits)
                                    : obs::JsonValue()},
             {"private_bytes", timing ? obs::JsonValue(timing->private_bytes)
                                      : obs::JsonValue()},
             {"feasible", timing.has_value()}});
      }
      table.add_row(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());
  }

  const std::string metrics_out = cli.get("metrics-out");
  if (!metrics_out.empty()) {
    if (report.write(metrics_out)) {
      std::printf("bench report: %zu result rows -> %s\n", report.results(),
                  metrics_out.c_str());
    } else {
      std::fprintf(stderr, "cannot open %s\n", metrics_out.c_str());
      return 1;
    }
  }

  std::printf(
      "mechanism check (independent of core count):\n"
      "  RC pair visits per step are 2x every other strategy (full lists);\n"
      "  SAP allocates threads x N replicas; SDC allocates none.\n"
      "paper reference (large case 4, 16 cores): SDC ~12.4, RC ~7,\n"
      "SAP ~4 (peaks near 8 cores), CS < 1.\n");
  return 0;
}
