// Reproduction of the paper's TABLE I: speedups of 1-D, 2-D and 3-D
// Spatial Decomposition Coloring on the four bcc Fe test cases over the
// thread sweep {2, 3, 4, 8, 12, 16}.
//
// Blanks ("-") appear exactly where the paper leaves blanks: when the
// decomposition is infeasible for the box (1-D SDC on small boxes) or the
// per-color subdomain supply cannot feed every thread.
//
// Flags (see --help; every flag falls back to the matching environment
// variable so existing scripts keep working):
//   --scale tiny|laptop|desktop|paper     (SDCMD_BENCH_SCALE,   laptop)
//   --threads 2,3,4                       (SDCMD_BENCH_THREADS, 2,3,4,8,12,16)
//   --steps N                             (SDCMD_BENCH_STEPS,   3)
//   --csv-dir DIR                         (SDCMD_BENCH_CSV_DIR, .)
//   --metrics-out FILE    versioned sdcmd.bench.v1 JSON results
//   --jsonl-out FILE      per-step sdcmd.step_metrics.v1 records from an
//                         instrumented 2-D SDC pass (sweep imbalance +
//                         barrier waits per color and phase)
//   --trace-out FILE      Chrome trace-event JSON from the same pass; load
//                         in Perfetto / chrome://tracing
//   --overhead-check      time the disabled-instrumentation path twice and
//                         the profiled path once; reports the disabled-path
//                         spread (expected: within run-to-run noise)
//
// NOTE on hosts with few cores: speedup = serial_time / parallel_time is
// bounded by the physical core count; on a 1-core container every parallel
// figure hovers near (or below) 1.0. The *feasibility pattern* (the blanks)
// and the relative cost ordering remain meaningful; run on a >= 16-core
// machine with --scale paper for the published numbers.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "benchsupport/cases.hpp"
#include "benchsupport/sweep.hpp"
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "common/threads.hpp"
#include "obs/bench_report.hpp"
#include "potential/finnis_sinclair.hpp"

namespace {

using namespace sdcmd;
using namespace sdcmd::bench;

/// The largest swept thread count the first case's 2-D SDC decomposition
/// can feed; used by the instrumented pass and the overhead check.
int pick_probe_threads(CaseRunner& runner, const std::vector<int>& threads,
                       int steps) {
  EamForceConfig cfg;
  cfg.strategy = ReductionStrategy::Sdc;
  cfg.sdc.dimensionality = 2;
  for (auto it = threads.rbegin(); it != threads.rend(); ++it) {
    if (runner.time_strategy(cfg, *it, 1).has_value()) return *it;
  }
  (void)steps;
  return 1;
}

/// One instrumented 2-D SDC pass on `runner`, writing JSONL step records
/// and/or a Chrome trace. Returns the number of JSONL records written.
std::size_t run_instrumented_pass(CaseRunner& runner, int threads, int steps,
                                  const std::string& jsonl_path,
                                  const std::string& trace_path) {
  obs::MetricsRegistry registry;
  std::optional<obs::StepMetricsWriter> jsonl;
  if (!jsonl_path.empty()) {
    jsonl.emplace(jsonl_path);
    if (!jsonl->ok()) {
      std::fprintf(stderr, "cannot open %s\n", jsonl_path.c_str());
    }
  }
  obs::TraceWriter trace;

  SweepInstrumentation instr;
  instr.registry = &registry;
  instr.jsonl = jsonl ? &*jsonl : nullptr;
  instr.trace = trace_path.empty() ? nullptr : &trace;
  // Hardware counters ride along when the kernel allows them; otherwise
  // the stream records hw.available=0 (see docs/observability.md).
  instr.hw_counters = true;

  EamForceConfig cfg;
  cfg.strategy = ReductionStrategy::Sdc;
  cfg.sdc.dimensionality = 2;
  const auto timing = runner.time_strategy(cfg, threads, steps, &instr);
  if (!timing) {
    std::fprintf(stderr, "instrumented pass infeasible; no output written\n");
    return 0;
  }
  if (!trace_path.empty()) {
    if (trace.write(trace_path)) {
      std::printf("instrumented pass: %zu trace events -> %s\n",
                  trace.size(), trace_path.c_str());
    } else {
      std::fprintf(stderr, "cannot open %s\n", trace_path.c_str());
    }
  }
  if (jsonl) {
    std::printf("instrumented pass: %zu step records -> %s\n",
                jsonl->records(), jsonl_path.c_str());
  }
  return jsonl ? jsonl->records() : 0;
}

struct OverheadResult {
  double disabled_a = 0.0;  ///< s/step, plain pass
  double disabled_b = 0.0;  ///< s/step, identical second pass (noise probe)
  double enabled = 0.0;     ///< s/step with the sweep profiler on
  double spread() const {
    const double lo = std::min(disabled_a, disabled_b);
    return lo > 0.0 ? std::abs(disabled_a - disabled_b) / lo : 0.0;
  }
  double enabled_cost() const {
    const double lo = std::min(disabled_a, disabled_b);
    return lo > 0.0 ? enabled / lo - 1.0 : 0.0;
  }
};

/// Disabled instrumentation is supposed to cost one branch per span: two
/// identical uninstrumented passes bound the run-to-run noise, and the
/// profiled pass shows what turning the profiler on actually costs.
OverheadResult run_overhead_check(CaseRunner& runner, int threads,
                                  int steps) {
  EamForceConfig cfg;
  cfg.strategy = ReductionStrategy::Sdc;
  cfg.sdc.dimensionality = 2;

  OverheadResult r;
  r.disabled_a = runner.time_strategy(cfg, threads, steps)
                     ->density_force_seconds;
  r.disabled_b = runner.time_strategy(cfg, threads, steps)
                     ->density_force_seconds;
  obs::MetricsRegistry registry;
  SweepInstrumentation instr;
  instr.registry = &registry;
  r.enabled = runner.time_strategy(cfg, threads, steps, &instr)
                  ->density_force_seconds;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_table1_sdc",
                "TABLE I reproduction: SDC dimensionality x thread sweep");
  cli.add_option("scale", "", "tiny|laptop|desktop|paper (default: env)");
  cli.add_option("threads", "", "comma list, e.g. 2,4,8 (default: env)");
  cli.add_option("steps", "", "timed steps per configuration (default: env)");
  cli.add_option("csv-dir", "", "CSV output directory (default: env or .)");
  cli.add_option("metrics-out", "", "write sdcmd.bench.v1 JSON here");
  cli.add_option("jsonl-out", "", "write instrumented-pass JSONL here");
  cli.add_option("trace-out", "", "write instrumented-pass Chrome trace here");
  cli.add_flag("overhead-check", "measure disabled-instrumentation overhead");
  if (!cli.parse(argc, argv)) return 1;

  const Scale scale = cli.get("scale").empty() ? scale_from_env()
                                               : parse_scale(cli.get("scale"));
  const auto cases = paper_cases(scale);
  const auto threads = cli.get("threads").empty()
                           ? thread_sweep_from_env()
                           : cli.get_int_list("threads");
  const int steps =
      cli.get("steps").empty() ? steps_from_env() : cli.get_int("steps");
  FinnisSinclair iron(FinnisSinclairParams::iron());

  // Machine-readable results next to the console tables.
  const char* csv_env = std::getenv("SDCMD_BENCH_CSV_DIR");
  const std::string csv_dir =
      !cli.get("csv-dir").empty() ? cli.get("csv-dir")
                                  : (csv_env != nullptr ? csv_env : ".");
  CsvWriter csv(csv_dir + "/table1_sdc.csv",
                {"case", "atoms", "dims", "threads", "seconds_per_step",
                 "speedup"});

  obs::BenchReport report("table1_sdc");
  report.set_context("scale", to_string(scale));
  report.set_context("steps", steps);
  report.set_context("hardware_threads", hardware_threads());
  {
    std::string sweep;
    for (int t : threads) {
      if (!sweep.empty()) sweep += ',';
      sweep += std::to_string(t);
    }
    report.set_context("thread_sweep", sweep);
  }

  std::printf("=== TABLE I: SDC speedups (scale %s, %s, %d steps/config)\n\n",
              to_string(scale).c_str(), thread_summary().c_str(), steps);

  for (const TestCase& test_case : cases) {
    CaseRunner runner(test_case, iron);
    const double serial = runner.serial_seconds_per_step(steps);
    std::printf("--- case %s: %zu atoms, serial density+force %.4f s/step\n",
                test_case.name.c_str(), test_case.atom_count(), serial);

    std::vector<std::string> headers{"speedup"};
    for (int t : threads) headers.push_back(std::to_string(t));
    AsciiTable table(headers);

    for (int dims = 1; dims <= 3; ++dims) {
      std::vector<std::string> row{"SDC (" + std::to_string(dims) + "-D)"};
      for (int t : threads) {
        EamForceConfig cfg;
        cfg.strategy = ReductionStrategy::Sdc;
        cfg.sdc.dimensionality = dims;
        const auto timing = runner.time_strategy(cfg, t, steps);
        row.push_back(format_speedup(
            timing ? std::optional<double>(serial /
                                           timing->density_force_seconds)
                   : std::nullopt));
        csv.add_row({test_case.name, std::to_string(test_case.atom_count()),
                     std::to_string(dims), std::to_string(t),
                     timing ? AsciiTable::fmt(timing->density_force_seconds, 6)
                            : "",
                     timing ? AsciiTable::fmt(
                                  serial / timing->density_force_seconds, 3)
                            : ""});
        report.add_result(
            {{"case", test_case.name},
             {"atoms", test_case.atom_count()},
             {"dims", dims},
             {"threads", t},
             {"serial_seconds_per_step", serial},
             {"seconds_per_step",
              timing ? obs::JsonValue(timing->density_force_seconds)
                     : obs::JsonValue()},
             {"speedup",
              timing
                  ? obs::JsonValue(serial / timing->density_force_seconds)
                  : obs::JsonValue()},
             {"feasible", timing.has_value()}});
      }
      table.add_row(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());
  }

  // Instrumented pass + overhead check run on the first (smallest) case
  // with the highest feasible swept thread count.
  const std::string jsonl_out = cli.get("jsonl-out");
  const std::string trace_out = cli.get("trace-out");
  const bool overhead = cli.get_bool("overhead-check");
  if (!jsonl_out.empty() || !trace_out.empty() || overhead) {
    CaseRunner probe(cases.front(), iron);
    const int probe_threads = pick_probe_threads(probe, threads, steps);
    if (!jsonl_out.empty() || !trace_out.empty()) {
      std::printf("--- instrumented pass: case %s, 2-D SDC, %d threads\n",
                  cases.front().name.c_str(), probe_threads);
      run_instrumented_pass(probe, probe_threads, steps, jsonl_out,
                            trace_out);
    }
    if (overhead) {
      const OverheadResult r = run_overhead_check(probe, probe_threads, steps);
      std::printf(
          "--- overhead check (case %s, 2-D SDC, %d threads, %d steps):\n"
          "    disabled pass A %.6f s/step, pass B %.6f s/step "
          "(spread %.2f%% = run-to-run noise)\n"
          "    profiler enabled %.6f s/step (%+.2f%% vs best disabled)\n",
          cases.front().name.c_str(), probe_threads, steps, r.disabled_a,
          r.disabled_b, 100.0 * r.spread(), r.enabled,
          100.0 * r.enabled_cost());
      report.set_context("overhead_disabled_a_s", r.disabled_a);
      report.set_context("overhead_disabled_b_s", r.disabled_b);
      report.set_context("overhead_enabled_s", r.enabled);
      report.set_context("overhead_disabled_spread", r.spread());
      report.set_context("overhead_enabled_cost", r.enabled_cost());
    }
  }

  const std::string metrics_out = cli.get("metrics-out");
  if (!metrics_out.empty()) {
    if (report.write(metrics_out)) {
      std::printf("bench report: %zu result rows -> %s\n", report.results(),
                  metrics_out.c_str());
    } else {
      std::fprintf(stderr, "cannot open %s\n", metrics_out.c_str());
      return 1;
    }
  }

  std::printf(
      "paper reference (16 cores, large case 4): 1-D 9.82, 2-D 12.42, "
      "3-D 12.34;\nexpected shape: 2-D >= 3-D > 1-D at high threads, and "
      "1-D blanks on small cases.\n");
  return 0;
}
