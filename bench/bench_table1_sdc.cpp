// Reproduction of the paper's TABLE I: speedups of 1-D, 2-D and 3-D
// Spatial Decomposition Coloring on the four bcc Fe test cases over the
// thread sweep {2, 3, 4, 8, 12, 16}.
//
// Blanks ("-") appear exactly where the paper leaves blanks: when the
// decomposition is infeasible for the box (1-D SDC on small boxes) or the
// per-color subdomain supply cannot feed every thread.
//
// Environment:
//   SDCMD_BENCH_SCALE   tiny|laptop|desktop|paper   (default laptop)
//   SDCMD_BENCH_THREADS comma list                  (default 2,3,4,8,12,16)
//   SDCMD_BENCH_STEPS   timed steps per config      (default 3)
//
// NOTE on hosts with few cores: speedup = serial_time / parallel_time is
// bounded by the physical core count; on a 1-core container every parallel
// figure hovers near (or below) 1.0. The *feasibility pattern* (the blanks)
// and the relative cost ordering remain meaningful; run on a >= 16-core
// machine with SDCMD_BENCH_SCALE=paper for the published numbers.
#include <cstdio>
#include <cstdlib>

#include "benchsupport/cases.hpp"
#include "benchsupport/sweep.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "common/threads.hpp"
#include "potential/finnis_sinclair.hpp"

int main() {
  using namespace sdcmd;
  using namespace sdcmd::bench;

  const Scale scale = scale_from_env();
  const auto cases = paper_cases(scale);
  const auto threads = thread_sweep_from_env();
  const int steps = steps_from_env();
  FinnisSinclair iron(FinnisSinclairParams::iron());

  // Machine-readable results next to the console tables
  // (SDCMD_BENCH_CSV_DIR overrides the target directory).
  const char* csv_dir = std::getenv("SDCMD_BENCH_CSV_DIR");
  CsvWriter csv(std::string(csv_dir ? csv_dir : ".") + "/table1_sdc.csv",
                {"case", "atoms", "dims", "threads", "seconds_per_step",
                 "speedup"});

  std::printf("=== TABLE I: SDC speedups (scale %s, %s, %d steps/config)\n\n",
              to_string(scale).c_str(), thread_summary().c_str(), steps);

  for (const TestCase& test_case : cases) {
    CaseRunner runner(test_case, iron);
    const double serial = runner.serial_seconds_per_step(steps);
    std::printf("--- case %s: %zu atoms, serial density+force %.4f s/step\n",
                test_case.name.c_str(), test_case.atom_count(), serial);

    std::vector<std::string> headers{"speedup"};
    for (int t : threads) headers.push_back(std::to_string(t));
    AsciiTable table(headers);

    for (int dims = 1; dims <= 3; ++dims) {
      std::vector<std::string> row{"SDC (" + std::to_string(dims) + "-D)"};
      for (int t : threads) {
        EamForceConfig cfg;
        cfg.strategy = ReductionStrategy::Sdc;
        cfg.sdc.dimensionality = dims;
        const auto timing = runner.time_strategy(cfg, t, steps);
        row.push_back(format_speedup(
            timing ? std::optional<double>(serial /
                                           timing->density_force_seconds)
                   : std::nullopt));
        csv.add_row({test_case.name, std::to_string(test_case.atom_count()),
                     std::to_string(dims), std::to_string(t),
                     timing ? AsciiTable::fmt(timing->density_force_seconds, 6)
                            : "",
                     timing ? AsciiTable::fmt(
                                  serial / timing->density_force_seconds, 3)
                            : ""});
      }
      table.add_row(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());
  }

  std::printf(
      "paper reference (16 cores, large case 4): 1-D 9.82, 2-D 12.42, "
      "3-D 12.34;\nexpected shape: 2-D >= 3-D > 1-D at high threads, and "
      "1-D blanks on small cases.\n");
  return 0;
}
