// Reproduction of the paper's Section II.B structural claims:
//
//  * subdomain supply: "there are 340 subdomains with each color in medium
//    test case, and there are nearly 5000 subdomains with each color in
//    large test case" (2-D SDC at the paper scale - we print the same
//    quantity for every case / dimensionality at the current scale AND at
//    the paper scale, which is pure arithmetic and always runs);
//
//  * fork-join / barrier counts per time step: 2 colors (1-D), 4 (2-D),
//    8 (3-D) per force phase;
//
//  * "the cost of spatial decomposition and coloring is very low":
//    we time schedule construction + atom partitioning against one force
//    evaluation.
#include <cstdio>

#include "benchsupport/cases.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "common/units.hpp"
#include "core/eam_force.hpp"
#include "core/sdc_schedule.hpp"
#include "geom/lattice.hpp"
#include "potential/finnis_sinclair.hpp"

namespace {

constexpr double kSkin = 0.4;

void print_subdomain_table(sdcmd::bench::Scale scale) {
  using namespace sdcmd;
  using namespace sdcmd::bench;

  FinnisSinclair iron(FinnisSinclairParams::iron());
  const double range = iron.cutoff() + kSkin;

  std::printf("subdomain supply at scale '%s':\n",
              to_string(scale).c_str());
  AsciiTable table({"case", "atoms", "dims", "grid", "colors",
                    "subdomains/color"});
  for (const TestCase& test_case : paper_cases(scale)) {
    const Box box = test_case.lattice().box();
    for (int dims = 1; dims <= 3; ++dims) {
      std::vector<std::string> row{test_case.name,
                                   std::to_string(test_case.atom_count()),
                                   std::to_string(dims) + "-D"};
      try {
        const auto d = SpatialDecomposition::finest(box, dims, range);
        const Coloring coloring(d);
        row.push_back(std::to_string(d.counts()[0]) + "x" +
                      std::to_string(d.counts()[1]) + "x" +
                      std::to_string(d.counts()[2]));
        row.push_back(std::to_string(coloring.color_count()));
        row.push_back(std::to_string(coloring.group_size()));
      } catch (const InfeasibleError&) {
        row.insert(row.end(), {"-", "-", "infeasible"});
      }
      table.add_row(std::move(row));
    }
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main() {
  using namespace sdcmd;
  using namespace sdcmd::bench;

  std::printf("=== Section II.B: decomposition structure\n\n");
  print_subdomain_table(scale_from_env());
  print_subdomain_table(Scale::Paper);
  std::printf(
      "paper reference at paper scale, 2-D: medium ~340/color, large3 "
      "~5000/color\n(exact values depend on the skin; the magnitude is the "
      "claim).\n\n");

  // Barrier counts per force phase.
  std::printf("synchronization structure per time step (two SDC phases):\n");
  AsciiTable sync({"dims", "colors", "parallel regions/step",
                   "color barriers/step"});
  for (int dims = 1; dims <= 3; ++dims) {
    const int colors = 1 << dims;
    sync.add_row({std::to_string(dims) + "-D", std::to_string(colors), "2",
                  std::to_string(2 * colors)});
  }
  std::printf("%s\n", sync.render().c_str());

  // Cost of schedule construction vs one force evaluation.
  FinnisSinclair iron(FinnisSinclairParams::iron());
  const TestCase test_case = paper_cases(scale_from_env())[2];  // large3
  LatticeSpec spec = test_case.lattice();
  const Box box = spec.box();
  const auto positions = build_lattice(spec);

  Stopwatch schedule_watch;
  schedule_watch.start();
  SdcConfig sdc_cfg;
  sdc_cfg.dimensionality = 2;
  SdcSchedule schedule(box, iron.cutoff() + kSkin, sdc_cfg);
  schedule.rebuild(positions);
  const double schedule_time = schedule_watch.stop();

  NeighborListConfig nl_cfg;
  nl_cfg.cutoff = iron.cutoff();
  nl_cfg.skin = kSkin;
  NeighborList list(box, nl_cfg);
  Stopwatch list_watch;
  list_watch.start();
  list.build(positions);
  const double list_time = list_watch.stop();

  EamForceConfig fc;
  fc.strategy = ReductionStrategy::Serial;
  EamForceComputer computer(iron, fc);
  std::vector<double> rho(positions.size()), fp(positions.size());
  std::vector<Vec3> force(positions.size());
  Stopwatch force_watch;
  force_watch.start();
  computer.compute(box, positions, list, rho, fp, force);
  const double force_time = force_watch.stop();

  std::printf(
      "amortization on case %s (%zu atoms):\n"
      "  SDC schedule build (decompose+color+partition) %.5f s\n"
      "  neighbor-list build                            %.5f s\n"
      "  one serial force evaluation                    %.5f s\n"
      "  -> schedule cost is %.1f%% of a single step and is paid only at\n"
      "     neighbor-list rebuilds (every ~10-50 steps), matching the\n"
      "     paper's 'the times of steps 1 and 2 can be omitted'.\n",
      test_case.name.c_str(), positions.size(), schedule_time, list_time,
      force_time, 100.0 * schedule_time / force_time);
  return 0;
}
