// bench_serve_load: latency and overload characterization of sdcmd-serve.
//
// Boots an in-process SessionServer on a temp socket, fills it to its
// admission cap, and measures per-op latency histograms (p50/p95/p99)
// under steady step traffic:
//
//   * control-plane ops (status, step, snapshot) measured from a client
//     while every session is being stepped by the worker pool;
//   * the overload drill: create attempts beyond the cap must ALL be
//     rejected explicitly (code "overloaded", never queued), and the p99
//     step-op latency under that rejection storm must stay within 2x the
//     baseline — the acceptance bar for admission control being cheap;
//   * the serve.* metric family is flushed as a kind=summary JSONL record
//     for scripts/validate_bench_output.py.
//
// Emits sdcmd.bench.v1 (--out) with one row per case; rows carry
// p50_ms/p95_ms/p99_ms and feasible=false when an invariant (full
// rejection, 2x bound) fails, so the perf gate catches regressions.

#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/timer.hpp"
#include "obs/bench_report.hpp"
#include "obs/jsonl.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

using namespace sdcmd;

namespace {

struct Latencies {
  std::vector<double> ms;
  double p(double q) const { return percentile(ms, q); }
};

obs::BenchReport::Row latency_row(const std::string& name,
                                  const Latencies& lat, bool feasible) {
  return {{"case", obs::JsonValue(name)},
          {"ops", obs::JsonValue(static_cast<std::int64_t>(lat.ms.size()))},
          {"p50_ms", obs::JsonValue(lat.p(50.0))},
          {"p95_ms", obs::JsonValue(lat.p(95.0))},
          {"p99_ms", obs::JsonValue(lat.p(99.0))},
          {"feasible", obs::JsonValue(feasible)}};
}

/// Time one request round-trip in milliseconds.
template <typename Fn>
double timed_ms(Fn&& fn) {
  const double t0 = wall_time();
  fn();
  return (wall_time() - t0) * 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_serve_load",
                "Latency/overload characterization of the session server");
  cli.add_option("sessions", "4", "sessions to create (== admission cap)");
  cli.add_option("workers", "2", "server worker threads");
  cli.add_option("cells", "4", "lattice cells per session");
  cli.add_option("ops", "300", "measured requests per case");
  cli.add_option("overload-attempts", "50", "rejected creates in the drill");
  cli.add_option("steps-per-burst", "50", "step budget refreshed per round");
  cli.add_option("socket", "bench_serve.sock", "AF_UNIX socket path");
  cli.add_option("root", "bench_serve.d", "sessions root");
  cli.add_option("out", "", "write sdcmd.bench.v1 JSON here");
  cli.add_option("metrics-out", "", "write serve.* summary JSONL here");
  if (!cli.parse(argc, argv)) return 1;

  const int sessions = cli.get_int("sessions");
  const int ops = cli.get_int("ops");
  const int overload_attempts = cli.get_int("overload-attempts");
  const long burst = cli.get_int("steps-per-burst");

  obs::MetricsRegistry registry;
  serve::ServerConfig config;
  config.socket_path = cli.get("socket");
  config.root = cli.get("root");
  config.max_sessions = sessions;  // the drill needs a reachable cap
  config.workers = cli.get_int("workers");
  config.session.watchdog_min_seconds = 5.0;  // bench hosts are noisy
  config.registry = &registry;

  obs::BenchReport report("serve_load");
  report.set_context("sessions", sessions);
  report.set_context("workers", cli.get_int("workers"));
  report.set_context("cells", cli.get_int("cells"));
  report.set_context("ops_per_case", ops);
  report.set_context("overload_attempts", overload_attempts);

  try {
    serve::SessionServer server(config);
    server.start();

    serve::ClientConfig ccfg;
    ccfg.socket_path = cli.get("socket");
    serve::ServeClient client(ccfg);

    // Fill the fleet to the cap.
    for (int i = 0; i < sessions; ++i) {
      serve::WireMessage create;
      create.set("op", "create");
      create.set("id", "b" + std::to_string(i));
      create.set("cells", cli.get_int("cells"));
      create.set("seed", 1000 + i);
      const serve::WireMessage r = client.request(create);
      if (!r.get_bool("ok", false)) {
        throw Error("create failed: " + r.serialize());
      }
    }

    const auto step_session = [&](int i, long steps) {
      serve::WireMessage msg;
      msg.set("op", "step");
      msg.set("id", "b" + std::to_string(i % sessions));
      msg.set("steps", steps);
      return client.request(msg);
    };
    const auto refresh_budgets = [&] {
      for (int i = 0; i < sessions; ++i) step_session(i, burst);
    };

    // Warm-up: populate neighbor structures and the workers' caches.
    refresh_budgets();
    client.request_op("status", "b0");

    // Case 1..3: control-plane latency under steady stepping.
    Latencies status_lat;
    Latencies step_lat;
    Latencies snapshot_lat;
    std::vector<double> frame;
    for (int i = 0; i < ops; ++i) {
      if (i % 16 == 0) refresh_budgets();
      status_lat.ms.push_back(timed_ms(
          [&] { client.request_op("status", "b" + std::to_string(i % sessions)); }));
      step_lat.ms.push_back(timed_ms([&] { step_session(i, 1); }));
      snapshot_lat.ms.push_back(timed_ms(
          [&] { client.snapshot("b" + std::to_string(i % sessions), frame); }));
    }
    report.add_result(latency_row("status", status_lat, true));
    report.add_result(latency_row("step", step_lat, true));
    report.add_result(latency_row("snapshot", snapshot_lat, true));

    // Overload drill: every create beyond the cap must be rejected
    // explicitly, and step latency for the existing fleet must not
    // degrade past 2x while the rejection storm runs.
    Latencies overload_step_lat;
    Latencies reject_lat;
    int rejected = 0;
    for (int i = 0; i < overload_attempts; ++i) {
      if (i % 16 == 0) refresh_budgets();
      serve::WireMessage extra;
      extra.set("op", "create");
      extra.set("id", "overflow" + std::to_string(i));
      extra.set("cells", cli.get_int("cells"));
      serve::WireMessage r;
      reject_lat.ms.push_back(timed_ms([&] { r = client.request(extra); }));
      if (!r.get_bool("ok", true) &&
          r.get_string("code") == "overloaded") {
        ++rejected;
      }
      overload_step_lat.ms.push_back(timed_ms([&] { step_session(i, 1); }));
    }
    const bool all_rejected = rejected == overload_attempts;
    const double baseline_p99 = step_lat.p(99.0);
    const double overloaded_p99 = overload_step_lat.p(99.0);
    const bool bounded = overloaded_p99 <= 2.0 * baseline_p99;
    report.add_result(
        {{"case", obs::JsonValue("overload_reject")},
         {"ops", obs::JsonValue(static_cast<std::int64_t>(overload_attempts))},
         {"rejected", obs::JsonValue(rejected)},
         {"p50_ms", obs::JsonValue(reject_lat.p(50.0))},
         {"p95_ms", obs::JsonValue(reject_lat.p(95.0))},
         {"p99_ms", obs::JsonValue(reject_lat.p(99.0))},
         {"feasible", obs::JsonValue(all_rejected)}});
    report.add_result(
        {{"case", obs::JsonValue("step_under_overload")},
         {"ops", obs::JsonValue(static_cast<std::int64_t>(
              overload_step_lat.ms.size()))},
         {"p50_ms", obs::JsonValue(overload_step_lat.p(50.0))},
         {"p95_ms", obs::JsonValue(overload_step_lat.p(95.0))},
         {"p99_ms", obs::JsonValue(overloaded_p99)},
         {"baseline_p99_ms", obs::JsonValue(baseline_p99)},
         {"p99_ratio", obs::JsonValue(baseline_p99 > 0.0
                                          ? overloaded_p99 / baseline_p99
                                          : 0.0)},
         {"feasible", obs::JsonValue(bounded)}});
    report.set_context("overload_all_rejected", all_rejected);
    report.set_context("overload_p99_ratio",
                       baseline_p99 > 0.0 ? overloaded_p99 / baseline_p99
                                          : 0.0);

    client.request_op("drain");
    server.wait();

    if (!cli.get("metrics-out").empty()) {
      obs::StepMetricsWriter writer(cli.get("metrics-out"));
      writer.write_summary(0, registry);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "bench_serve_load: %s\n", e.what());
    return 1;
  }

  std::printf("bench_serve_load: %zu result rows\n", report.results());
  if (!cli.get("out").empty() && !report.write(cli.get("out"))) {
    std::fprintf(stderr, "bench_serve_load: cannot write %s\n",
                 cli.get("out").c_str());
    return 1;
  }
  return 0;
}
