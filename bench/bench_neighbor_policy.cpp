// Neighbor machinery policy study: Verlet lists (the paper's choice, via
// XMD) versus the cell-direct sweep, and the skin-size trade-off.
//
//  * cell-direct: no list to build, but every step tests all ~2.7x pairs
//    in the 27-cell neighborhood;
//  * Verlet list: pays a build every ~skin/(2*v_max) steps, then streams
//    exactly the in-range pairs.
//
// Prints per-step costs, the measured pair-test inflation, and the
// break-even rebuild interval that justifies the paper's list pipeline.
#include <cstdio>

#include "benchsupport/cases.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "common/units.hpp"
#include "core/cell_direct.hpp"
#include "core/eam_force.hpp"
#include "geom/lattice.hpp"
#include "potential/finnis_sinclair.hpp"

int main() {
  using namespace sdcmd;
  using namespace sdcmd::bench;

  const Scale scale = scale_from_env();
  const int steps = std::max(2, steps_from_env());
  const TestCase test_case = paper_cases(scale)[1];  // medium
  FinnisSinclair iron(FinnisSinclairParams::iron());

  LatticeSpec spec = test_case.lattice();
  const Box box = spec.box();
  const auto positions = build_lattice(spec);
  const std::size_t n = positions.size();
  std::vector<double> rho(n), fp(n);
  std::vector<Vec3> force(n);

  std::printf("=== neighbor policy study (case %s, %zu atoms)\n\n",
              test_case.name.c_str(), n);

  // Cell-direct per step.
  eam_cell_direct(box, positions, iron, rho, fp, force);  // warmup
  Stopwatch direct_watch;
  direct_watch.start();
  for (int s = 0; s < steps; ++s) {
    eam_cell_direct(box, positions, iron, rho, fp, force);
  }
  const double direct_step = direct_watch.stop() / steps;

  AsciiTable table({"skin (A)", "list build (s)", "force step (s)",
                    "pairs stored", "break-even rebuild interval"});
  for (double skin : {0.0, 0.2, 0.4, 0.8}) {
    NeighborListConfig nl;
    nl.cutoff = iron.cutoff();
    nl.skin = skin;
    NeighborList list(box, nl);

    Stopwatch build_watch;
    build_watch.start();
    list.build(positions);
    const double build = build_watch.stop();

    EamForceConfig cfg;
    cfg.strategy = ReductionStrategy::Serial;
    EamForceComputer computer(iron, cfg);
    computer.compute(box, positions, list, rho, fp, force);  // warmup
    Stopwatch step_watch;
    step_watch.start();
    for (int s = 0; s < steps; ++s) {
      computer.compute(box, positions, list, rho, fp, force);
    }
    const double list_step = step_watch.stop() / steps;

    // Lists win once the per-step saving amortizes one build:
    //   k * (direct - list_step) > build  =>  k > build / saving.
    std::string break_even = "never";
    if (direct_step > list_step) {
      break_even = AsciiTable::fmt(build / (direct_step - list_step), 1) +
                   " steps";
    }
    table.add_row({AsciiTable::fmt(skin, 1), AsciiTable::fmt(build, 4),
                   AsciiTable::fmt(list_step, 4),
                   std::to_string(list.pair_count()), break_even});
  }

  std::printf("cell-direct force step: %.4f s (no build cost)\n\n",
              direct_step);
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: with a 0.4 A skin a list survives ~10-50 steps of 300 K\n"
      "dynamics, far beyond the break-even interval - the paper's (and\n"
      "every production MD code's) Verlet-list pipeline is justified.\n");
  return 0;
}
