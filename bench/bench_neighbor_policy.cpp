// Neighbor machinery policy study and maintenance-pipeline benchmark.
//
// Two instruments in one binary:
//
//  * build A/B (default): the ISSUE 5 neighbor pipeline (parallel
//    counting-sort binning + half-stencil enumeration) against the legacy
//    serial path (serial binning, full-stencil scan with the per-pair
//    mode test), swept over thread counts. Writes sdcmd.bench.v1 rows
//    via --metrics-out.
//  * steady-state drill (--jsonl-out): a deform run instrumented with the
//    neighbor.* metrics. The strain rate is chosen so the grid reshapes
//    at least once mid-run, proving update_box() adapts in place -
//    neighbor.reconstructions stays at the single construction while
//    neighbor.grid_reshapes ticks.
//
// --skin-study restores the classic Verlet-vs-cell-direct skin table.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "benchsupport/cases.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/threads.hpp"
#include "common/timer.hpp"
#include "common/units.hpp"
#include "core/cell_direct.hpp"
#include "core/eam_force.hpp"
#include "geom/lattice.hpp"
#include "md/deform.hpp"
#include "md/simulation.hpp"
#include "obs/bench_report.hpp"
#include "obs/jsonl.hpp"
#include "obs/metrics.hpp"
#include "potential/finnis_sinclair.hpp"

namespace {

using namespace sdcmd;
using namespace sdcmd::bench;

struct BuildTiming {
  double seconds_per_build = 0.0;
  double bin_seconds = 0.0;
  double count_seconds = 0.0;
  double fill_seconds = 0.0;
  std::size_t pairs = 0;
  double coordination = 0.0;
};

BuildTiming time_builds(const Box& box, std::span<const Vec3> positions,
                        const NeighborListConfig& cfg, int builds) {
  NeighborList list(box, cfg);
  list.build(positions);  // warmup: sizes the CSR arrays and the scratch
  const NeighborBuildStats before = list.stats();
  const double t0 = wall_time();
  for (int b = 0; b < builds; ++b) list.build(positions);
  const double elapsed = wall_time() - t0;
  const NeighborBuildStats& after = list.stats();
  BuildTiming t;
  t.seconds_per_build = elapsed / builds;
  t.bin_seconds = (after.bin_seconds - before.bin_seconds) / builds;
  t.count_seconds = (after.count_seconds - before.count_seconds) / builds;
  t.fill_seconds = (after.fill_seconds - before.fill_seconds) / builds;
  t.pairs = list.pair_count();
  t.coordination = list.mean_neighbors();
  return t;
}

int run_build_ab(const CliParser& cli) {
  const Scale scale = cli.get("scale").empty() ? scale_from_env()
                                               : parse_scale(cli.get("scale"));
  const std::string case_name = cli.get("case");
  const auto cases = paper_cases(scale);
  const auto it =
      std::find_if(cases.begin(), cases.end(),
                   [&](const TestCase& c) { return c.name == case_name; });
  if (it == cases.end()) {
    std::fprintf(stderr, "unknown case %s\n", case_name.c_str());
    return 1;
  }
  const int builds = std::max(1, cli.get_int("builds"));
  const auto threads = cli.get("threads").empty()
                           ? thread_sweep_from_env()
                           : cli.get_int_list("threads");

  FinnisSinclair iron(FinnisSinclairParams::iron());
  LatticeSpec spec = it->lattice();
  const Box box = spec.box();
  const auto positions = build_lattice(spec);

  NeighborListConfig pipeline;
  pipeline.cutoff = iron.cutoff();
  pipeline.skin = 0.4;
  NeighborListConfig legacy = pipeline;
  legacy.half_stencil = false;
  legacy.parallel_bin = false;

  obs::BenchReport report("neighbor_policy_build_ab");
  report.set_context("case", it->name);
  report.set_context("atoms", positions.size());
  report.set_context("builds", builds);
  report.set_context("scale", to_string(scale));
  report.set_context("hardware_threads", hardware_threads());

  std::printf("=== neighbor build A/B (case %s, %zu atoms, %d builds)\n",
              it->name.c_str(), positions.size(), builds);
  std::printf("running on %s\n\n", thread_summary().c_str());

  AsciiTable table({"threads", "legacy build (s)", "pipeline build (s)",
                    "speedup", "bin (s)", "count (s)", "fill (s)"});
  for (int t : threads) {
    set_threads(t);
    const BuildTiming old_path = time_builds(box, positions, legacy, builds);
    const BuildTiming new_path =
        time_builds(box, positions, pipeline, builds);
    const double speedup =
        old_path.seconds_per_build / new_path.seconds_per_build;
    table.add_row({std::to_string(t),
                   AsciiTable::fmt(old_path.seconds_per_build, 5),
                   AsciiTable::fmt(new_path.seconds_per_build, 5),
                   AsciiTable::fmt(speedup, 2),
                   AsciiTable::fmt(new_path.bin_seconds, 5),
                   AsciiTable::fmt(new_path.count_seconds, 5),
                   AsciiTable::fmt(new_path.fill_seconds, 5)});
    auto add_row = [&](const char* name, const BuildTiming& m, double s) {
      report.add_result({{"case", std::string(name)},
                         {"threads", t},
                         {"seconds_per_build", m.seconds_per_build},
                         {"bin_seconds_per_build", m.bin_seconds},
                         {"count_seconds_per_build", m.count_seconds},
                         {"fill_seconds_per_build", m.fill_seconds},
                         {"pairs_stored", m.pairs},
                         {"coordination", m.coordination},
                         {"speedup", s},
                         {"feasible", true}});
    };
    add_row("legacy_build", old_path, 1.0);
    add_row("pipeline_build", new_path, speedup);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "legacy = serial binning + full-stencil scan; pipeline = parallel\n"
      "counting sort + half-stencil enumeration. Both store identical\n"
      "pair sets (tier-1 tests compare them to brute force).\n\n");

  const std::string metrics_out = cli.get("metrics-out");
  if (!metrics_out.empty()) {
    if (report.write(metrics_out)) {
      std::printf("bench report: %zu result rows -> %s\n", report.results(),
                  metrics_out.c_str());
    } else {
      std::fprintf(stderr, "cannot open %s\n", metrics_out.c_str());
      return 1;
    }
  }
  return 0;
}

int run_drill(const CliParser& cli) {
  const int steps = std::max(10, cli.get_int("drill-steps"));
  FinnisSinclair iron(FinnisSinclairParams::iron());
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = units::kLatticeFe;
  spec.nx = spec.ny = spec.nz = 6;
  SimulationConfig cfg;
  cfg.dt = units::fs_to_internal(1.0);
  cfg.force.strategy = ReductionStrategy::Serial;
  Simulation sim(System::from_lattice(spec, units::kMassFe), iron, cfg);
  sim.set_temperature(50.0, 11);

  // Strain rate sized so the box crosses one cell-count boundary mid-run:
  // the drill must show neighbor.grid_reshapes ticking while
  // neighbor.reconstructions stays at the single construction.
  const double range = iron.cutoff() + sim.effective_skin();
  const double edge = sim.system().box().length(0);
  const auto cells_now = static_cast<double>(
      static_cast<int>(edge / range));
  const double growth = (cells_now + 1.0) * range / edge * 1.02;
  const double rate = std::pow(growth, 1.0 / steps) - 1.0;
  sim.set_deformer(BoxDeformer({rate, rate, rate}), /*every=*/1);

  obs::MetricsRegistry registry;
  obs::StepMetricsWriter writer(cli.get("jsonl-out"));
  if (!writer.ok()) {
    std::fprintf(stderr, "cannot open %s\n", cli.get("jsonl-out").c_str());
    return 1;
  }
  InstrumentationConfig instr;
  instr.registry = &registry;
  instr.step_writer = &writer;
  sim.set_instrumentation(instr);

  sim.run(steps);
  sim.clear_instrumentation();
  writer.flush();

  const NeighborBuildStats stats = sim.neighbor_stats();
  std::printf(
      "drill: %d deform steps, %zu builds, %zu grid reshapes, %zu stencil\n"
      "rebuilds, %zu list reconstructions -> %s (%zu records)\n",
      steps, stats.builds, stats.grid_reshapes, stats.stencil_rebuilds,
      sim.neighbor_reconstructions(), cli.get("jsonl-out").c_str(),
      writer.records());
  if (stats.grid_reshapes == 0) {
    std::fprintf(stderr, "drill error: the run never reshaped the grid\n");
    return 1;
  }
  if (sim.neighbor_reconstructions() != 1) {
    std::fprintf(stderr,
                 "drill error: %zu list reconstructions (expected the "
                 "initial one only)\n",
                 sim.neighbor_reconstructions());
    return 1;
  }
  return 0;
}

int run_skin_study() {
  const Scale scale = scale_from_env();
  const int steps = std::max(2, steps_from_env());
  const TestCase test_case = paper_cases(scale)[1];  // medium
  FinnisSinclair iron(FinnisSinclairParams::iron());

  LatticeSpec spec = test_case.lattice();
  const Box box = spec.box();
  const auto positions = build_lattice(spec);
  const std::size_t n = positions.size();
  std::vector<double> rho(n), fp(n);
  std::vector<Vec3> force(n);

  std::printf("=== neighbor policy study (case %s, %zu atoms)\n\n",
              test_case.name.c_str(), n);

  // Cell-direct per step.
  eam_cell_direct(box, positions, iron, rho, fp, force);  // warmup
  Stopwatch direct_watch;
  direct_watch.start();
  for (int s = 0; s < steps; ++s) {
    eam_cell_direct(box, positions, iron, rho, fp, force);
  }
  const double direct_step = direct_watch.stop() / steps;

  AsciiTable table({"skin (A)", "list build (s)", "force step (s)",
                    "pairs stored", "break-even rebuild interval"});
  for (double skin : {0.0, 0.2, 0.4, 0.8}) {
    NeighborListConfig nl;
    nl.cutoff = iron.cutoff();
    nl.skin = skin;
    NeighborList list(box, nl);

    Stopwatch build_watch;
    build_watch.start();
    list.build(positions);
    const double build = build_watch.stop();

    EamForceConfig cfg;
    cfg.strategy = ReductionStrategy::Serial;
    EamForceComputer computer(iron, cfg);
    computer.compute(box, positions, list, rho, fp, force);  // warmup
    Stopwatch step_watch;
    step_watch.start();
    for (int s = 0; s < steps; ++s) {
      computer.compute(box, positions, list, rho, fp, force);
    }
    const double list_step = step_watch.stop() / steps;

    // Lists win once the per-step saving amortizes one build:
    //   k * (direct - list_step) > build  =>  k > build / saving.
    std::string break_even = "never";
    if (direct_step > list_step) {
      break_even = AsciiTable::fmt(build / (direct_step - list_step), 1) +
                   " steps";
    }
    table.add_row({AsciiTable::fmt(skin, 1), AsciiTable::fmt(build, 4),
                   AsciiTable::fmt(list_step, 4),
                   std::to_string(list.pair_count()), break_even});
  }

  std::printf("cell-direct force step: %.4f s (no build cost)\n\n",
              direct_step);
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: with a 0.4 A skin a list survives ~10-50 steps of 300 K\n"
      "dynamics, far beyond the break-even interval - the paper's (and\n"
      "every production MD code's) Verlet-list pipeline is justified.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_neighbor_policy",
                "neighbor build A/B (legacy vs pipeline), steady-state "
                "deform drill, and the classic skin study");
  cli.add_option("case", "medium", "small|medium|large3|large4");
  cli.add_option("scale", "", "tiny|laptop|desktop|paper (default: env)");
  cli.add_option("builds", "10", "timed list builds per configuration");
  cli.add_option("threads", "", "comma list, e.g. 2,4,8 (default: env)");
  cli.add_option("metrics-out", "", "write sdcmd.bench.v1 JSON here");
  cli.add_option("jsonl-out", "",
                 "run the deform drill, write step metrics JSONL here");
  cli.add_option("drill-steps", "60", "deform steps for the drill");
  cli.add_flag("skin-study", "run the Verlet-vs-cell-direct skin table");
  if (!cli.parse(argc, argv)) return 1;

  if (cli.get_bool("skin-study")) return run_skin_study();
  const int rc = run_build_ab(cli);
  if (rc != 0) return rc;
  if (!cli.get("jsonl-out").empty()) return run_drill(cli);
  return 0;
}
