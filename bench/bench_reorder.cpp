// Reproduction of the paper's Section II.D data-reordering claim:
// "the simulation efficiency increased was 12% in serial simulations and
// was 39% in parallel simulations ... on our large test case".
//
// Three measurements:
//  1. density+force time with atoms in a cache-hostile random order and
//     unsorted neighbor sublists (the unoptimized baseline);
//  2. the same with spatially sorted atoms + sorted sublists (optimized);
//     -> efficiency gain (T_unopt - T_opt) * 100 / T_unopt, serial and
//        parallel (the paper's eq. (3));
//  3. a focused comparison of regular CSR neighbor metadata versus the
//     fragmented per-atom-allocation layout (the paper's "transform
//     irregular arrays into regular arrays").
#include <cstdio>

#include "benchsupport/cases.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "common/threads.hpp"
#include "common/timer.hpp"
#include "common/units.hpp"
#include "core/eam_force.hpp"
#include "geom/lattice.hpp"
#include "neighbor/reorder.hpp"
#include "potential/finnis_sinclair.hpp"

namespace {

using namespace sdcmd;

constexpr double kSkin = 0.4;

struct Config {
  std::vector<Vec3> positions;
  Box box = Box::cubic(1.0);
};

enum class Ordering { Shuffled, CellSort, MortonSort };

Config make_case(int cells, Ordering ordering) {
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = units::kLatticeFe;
  spec.nx = spec.ny = spec.nz = cells;
  Config cfg{build_lattice(spec), spec.box()};

  Xoshiro256 rng(5);
  for (auto& r : cfg.positions) {
    r += Vec3{rng.normal(0.0, 0.05), rng.normal(0.0, 0.05),
              rng.normal(0.0, 0.05)};
    r = cfg.box.wrap(r);
  }

  switch (ordering) {
    case Ordering::CellSort: {
      const auto perm = spatial_sort_permutation(cfg.box, cfg.positions,
                                                 3.569745 + kSkin);
      cfg.positions = apply_permutation(cfg.positions, perm);
      break;
    }
    case Ordering::MortonSort: {
      const auto perm = morton_sort_permutation(cfg.box, cfg.positions,
                                                3.569745 + kSkin);
      cfg.positions = apply_permutation(cfg.positions, perm);
      break;
    }
    case Ordering::Shuffled:
      // Cache-hostile: shuffle atoms so loop order is uncorrelated with
      // spatial position (lattice order is already fairly local).
      for (std::size_t i = cfg.positions.size(); i > 1; --i) {
        std::swap(cfg.positions[i - 1], cfg.positions[rng.below(i)]);
      }
      break;
  }
  return cfg;
}

/// density+force seconds per step for the given ordering and threads.
double time_config(const Config& cfg, const FinnisSinclair& iron,
                   bool sort_neighbors, ReductionStrategy strategy,
                   int threads, int steps) {
  NeighborListConfig nl_cfg;
  nl_cfg.cutoff = iron.cutoff();
  nl_cfg.skin = kSkin;
  nl_cfg.sort_neighbors = sort_neighbors;
  NeighborList list(cfg.box, nl_cfg);
  list.build(cfg.positions);

  EamForceConfig fc;
  fc.strategy = strategy;
  fc.sdc.dimensionality = 2;
  EamForceComputer computer(iron, fc);
  computer.attach_schedule(cfg.box, iron.cutoff() + kSkin);
  computer.on_neighbor_rebuild(cfg.positions);

  std::vector<double> rho(cfg.positions.size()), fp(cfg.positions.size());
  std::vector<Vec3> force(cfg.positions.size());

  set_threads(strategy == ReductionStrategy::Serial ? 1 : threads);
  computer.compute(cfg.box, cfg.positions, list, rho, fp, force);  // warmup
  computer.reset_instrumentation();
  for (int s = 0; s < steps; ++s) {
    computer.compute(cfg.box, cfg.positions, list, rho, fp, force);
  }
  double density = 0.0, force_t = 0.0;
  for (const auto& e : computer.timers().entries()) {
    if (e.name == "density") density = e.seconds;
    if (e.name == "force") force_t = e.seconds;
  }
  return (density + force_t) / steps;
}

/// Time a density-only sweep through packed CSR vs fragmented storage.
std::pair<double, double> metadata_layout_times(const Config& cfg,
                                                const FinnisSinclair& iron,
                                                int reps) {
  NeighborListConfig nl_cfg;
  nl_cfg.cutoff = iron.cutoff();
  nl_cfg.skin = kSkin;
  NeighborList packed(cfg.box, nl_cfg);
  packed.build(cfg.positions);
  FragmentedNeighborList fragmented(packed);

  std::vector<double> rho(cfg.positions.size());
  const double cut2 = iron.cutoff() * iron.cutoff();

  auto run = [&](auto&& neighbors_of) {
    Stopwatch watch;
    watch.start();
    for (int rep = 0; rep < reps; ++rep) {
      std::fill(rho.begin(), rho.end(), 0.0);
      for (std::size_t i = 0; i < cfg.positions.size(); ++i) {
        double acc = 0.0;
        for (std::uint32_t j : neighbors_of(i)) {
          const Vec3 dr =
              cfg.box.minimum_image(cfg.positions[i], cfg.positions[j]);
          const double r2 = norm2(dr);
          if (r2 >= cut2) continue;
          double phi, dphidr;
          iron.density(std::sqrt(r2), phi, dphidr);
          acc += phi;
          rho[j] += phi;
        }
        rho[i] += acc;
      }
    }
    return watch.stop() / reps;
  };

  const double packed_time =
      run([&](std::size_t i) { return packed.neighbors(i); });
  const double fragmented_time =
      run([&](std::size_t i) { return fragmented.neighbors(i); });
  return {packed_time, fragmented_time};
}

}  // namespace

int main() {
  using namespace sdcmd::bench;

  const Scale scale = scale_from_env();
  // Use the largest case of the scale (the paper measured on its large
  // case, where locality effects are most visible).
  const TestCase test_case = paper_cases(scale).back();
  const int steps = steps_from_env();
  const int threads = sdcmd::hardware_threads() > 1
                          ? sdcmd::hardware_threads()
                          : 4;

  sdcmd::FinnisSinclair iron(sdcmd::FinnisSinclairParams::iron());

  std::printf(
      "=== Section II.D: data-reordering efficiency (case %s, %zu atoms)\n\n",
      test_case.name.c_str(), test_case.atom_count());

  const Config unopt = make_case(test_case.cells, Ordering::Shuffled);
  const Config opt = make_case(test_case.cells, Ordering::CellSort);
  const Config morton = make_case(test_case.cells, Ordering::MortonSort);

  sdcmd::AsciiTable table({"mode", "shuffled s/step", "cell-sorted s/step",
                           "morton s/step", "cell-sort gain"});
  const struct {
    const char* name;
    sdcmd::ReductionStrategy strategy;
    int threads;
  } rows[] = {
      {"serial", sdcmd::ReductionStrategy::Serial, 1},
      {"parallel (SDC)", sdcmd::ReductionStrategy::Sdc, threads},
  };
  for (const auto& row : rows) {
    const double t_unopt = time_config(unopt, iron, false, row.strategy,
                                       row.threads, steps);
    const double t_opt =
        time_config(opt, iron, true, row.strategy, row.threads, steps);
    const double t_morton =
        time_config(morton, iron, true, row.strategy, row.threads, steps);
    const double gain = (t_unopt - t_opt) * 100.0 / t_unopt;
    table.add_row({row.name, sdcmd::AsciiTable::fmt(t_unopt, 4),
                   sdcmd::AsciiTable::fmt(t_opt, 4),
                   sdcmd::AsciiTable::fmt(t_morton, 4),
                   sdcmd::AsciiTable::fmt(gain, 1) + " %"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper reference: +12%% serial, +39%% parallel on the large "
              "case (eq. 3); Morton (Z-order) is the space-filling-curve "
              "alternative to the paper's cell sweep.\n\n");

  const auto [packed_t, fragmented_t] =
      metadata_layout_times(opt, iron, std::max(1, steps));
  std::printf(
      "regular vs irregular neighbor metadata (density sweep):\n"
      "  packed CSR     %.4f s\n  fragmented     %.4f s\n"
      "  regular-array layout is %.1f%% faster\n",
      packed_t, fragmented_t,
      (fragmented_t - packed_t) * 100.0 / fragmented_t);
  return 0;
}
