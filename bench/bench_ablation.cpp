// Ablations of the SDC design choices called out in DESIGN.md:
//
//  1. subdomain granularity - the paper uses the finest legal
//     decomposition; we sweep coarser grids (max_subdomains caps) to show
//     why: fewer subdomains per color means worse balance and idle threads;
//  2. static vs dynamic OpenMP scheduling of the subdomain loop - the
//     paper's uniform-density workloads favor static chunks;
//  3. 1-D vs 2-D vs 3-D decomposition at fixed thread count - the paper's
//     Section IV discussion (2-D wins: fewer barriers than 3-D, better
//     cache shape than 1-D);
//  4. half-list SDC vs full-list RC pair-visit counts - the exact 2x work
//     trade, independent of the machine.
#include <cstdio>

#include "benchsupport/cases.hpp"
#include "benchsupport/sweep.hpp"
#include "common/table.hpp"
#include "common/threads.hpp"
#include "potential/finnis_sinclair.hpp"

int main() {
  using namespace sdcmd;
  using namespace sdcmd::bench;

  const Scale scale = scale_from_env();
  const int steps = steps_from_env();
  const TestCase test_case = paper_cases(scale)[2];  // large3
  FinnisSinclair iron(FinnisSinclairParams::iron());
  CaseRunner runner(test_case, iron);
  const int threads = std::max(4, hardware_threads());

  std::printf("=== SDC design ablations (case %s, %zu atoms, %d threads)\n\n",
              test_case.name.c_str(), test_case.atom_count(), threads);
  const double serial = runner.serial_seconds_per_step(steps);
  std::printf("serial density+force: %.4f s/step\n\n", serial);

  // 1. Granularity sweep.
  std::printf("granularity (2-D SDC, max subdomain caps):\n");
  AsciiTable gran({"max subdomains", "grid actually used", "s/step",
                   "vs finest"});
  double finest_time = 0.0;
  for (std::size_t cap : {0ull, 256ull, 64ull, 16ull, 4ull}) {
    EamForceConfig cfg;
    cfg.strategy = ReductionStrategy::Sdc;
    cfg.sdc.dimensionality = 2;
    cfg.sdc.max_subdomains = cap;
    const auto timing = runner.time_strategy(cfg, threads, steps);
    if (!timing) {
      gran.add_row({cap == 0 ? "finest" : std::to_string(cap), "-", "-",
                    "infeasible"});
      continue;
    }
    if (cap == 0) finest_time = timing->density_force_seconds;
    // Reconstruct the grid for display.
    SdcConfig probe = cfg.sdc;
    SdcSchedule schedule(runner.system().box(),
                         iron.cutoff() + runner.skin(), probe);
    const auto& counts = schedule.decomposition().counts();
    gran.add_row(
        {cap == 0 ? "finest" : std::to_string(cap),
         std::to_string(counts[0]) + "x" + std::to_string(counts[1]) + "x" +
             std::to_string(counts[2]),
         AsciiTable::fmt(timing->density_force_seconds, 4),
         AsciiTable::fmt(timing->density_force_seconds / finest_time, 2) +
             "x"});
  }
  std::printf("%s\n", gran.render().c_str());

  // 2. Static vs dynamic subdomain scheduling.
  std::printf("OpenMP schedule of the subdomain loop (2-D SDC):\n");
  AsciiTable sched({"schedule", "s/step"});
  for (bool dynamic : {false, true}) {
    EamForceConfig cfg;
    cfg.strategy = ReductionStrategy::Sdc;
    cfg.sdc.dimensionality = 2;
    cfg.dynamic_schedule = dynamic;
    const auto timing = runner.time_strategy(cfg, threads, steps);
    sched.add_row({dynamic ? "dynamic" : "static",
                   timing ? AsciiTable::fmt(timing->density_force_seconds, 4)
                          : "-"});
  }
  std::printf("%s\n", sched.render().c_str());

  // 3. Dimensionality at fixed threads.
  std::printf("decomposition dimensionality (%d threads):\n", threads);
  AsciiTable dims({"dims", "colors", "s/step", "speedup"});
  for (int d = 1; d <= 3; ++d) {
    EamForceConfig cfg;
    cfg.strategy = ReductionStrategy::Sdc;
    cfg.sdc.dimensionality = d;
    const auto timing = runner.time_strategy(cfg, threads, steps);
    dims.add_row({std::to_string(d) + "-D", std::to_string(1 << d),
                  timing ? AsciiTable::fmt(timing->density_force_seconds, 4)
                         : "-",
                  timing ? AsciiTable::fmt(
                               serial / timing->density_force_seconds, 2)
                         : "-"});
  }
  std::printf("%s\n", dims.render().c_str());

  // 4. Exact work accounting: SDC half lists vs RC full lists.
  EamForceConfig sdc_cfg;
  sdc_cfg.strategy = ReductionStrategy::Sdc;
  sdc_cfg.sdc.dimensionality = 2;
  const auto sdc_t = runner.time_strategy(sdc_cfg, threads, steps);
  EamForceConfig rc_cfg;
  rc_cfg.strategy = ReductionStrategy::RedundantComputation;
  const auto rc_t = runner.time_strategy(rc_cfg, threads, steps);
  if (sdc_t && rc_t) {
    std::printf(
        "work accounting: SDC walks %zu pairs/step, RC walks %zu "
        "(%.2fx);\nRC per-step time is %.2fx SDC's on this host.\n",
        sdc_t->pair_visits, rc_t->pair_visits,
        static_cast<double>(rc_t->pair_visits) /
            static_cast<double>(sdc_t->pair_visits),
        rc_t->density_force_seconds / sdc_t->density_force_seconds);
  }
  return 0;
}
