// Binary Fe-Cu alloy MD with SDC-parallelized multi-species EAM forces.
//
// Builds a bcc iron matrix, substitutes a fraction of sites with copper
// (Johnson cross-pair mixing between the Finnis-Sinclair Fe and Johnson Cu
// potentials), and runs NVE dynamics with a hand-rolled velocity-Verlet
// loop over the AlloyForceComputer - demonstrating the multi-species API
// end to end, including per-atom masses and the setfl-alloy export.
//
//   ./alloy_fecu [--cells 8] [--cu-fraction 0.1] [--steps 100]
#include <cstdio>

#include "common/cli.hpp"
#include "common/random.hpp"
#include "common/units.hpp"
#include "core/alloy_force.hpp"
#include "geom/lattice.hpp"
#include "md/integrator.hpp"
#include "md/thermo.hpp"
#include "md/velocity.hpp"
#include "potential/finnis_sinclair.hpp"
#include "potential/johnson.hpp"
#include "potential/setfl_alloy.hpp"

int main(int argc, char** argv) {
  using namespace sdcmd;

  CliParser cli("alloy_fecu", "binary Fe-Cu EAM alloy under SDC forces");
  cli.add_option("cells", "8", "bcc cells per box edge");
  cli.add_option("cu-fraction", "0.1", "fraction of sites holding Cu");
  cli.add_option("steps", "100", "NVE steps");
  cli.add_option("temperature", "300", "initial temperature (K)");
  cli.add_option("export-setfl", "", "optional FeCu.eam.alloy output path");
  if (!cli.parse(argc, argv)) return 1;

  // Potentials and the mixed alloy.
  FinnisSinclair iron(FinnisSinclairParams::iron());
  JohnsonEam cu(JohnsonParams::copper());
  JohnsonMixedAlloy alloy({{&iron, units::kMassFe, "Fe"},
                           {&cu, 63.546, "Cu"}});

  if (!cli.get("export-setfl").empty()) {
    write_setfl_alloy_file(cli.get("export-setfl"),
                           tabulate_alloy(alloy, 2000, 2000, 80.0),
                           "sdcmd Fe-Cu Johnson-mixed export");
    std::printf("wrote %s\n", cli.get("export-setfl").c_str());
  }

  // Configuration: bcc Fe with random Cu substitutions.
  LatticeSpec lattice;
  lattice.type = LatticeType::Bcc;
  lattice.a0 = units::kLatticeFe;
  lattice.nx = lattice.ny = lattice.nz = cli.get_int("cells");
  const Box box = lattice.box();
  std::vector<Vec3> positions = build_lattice(lattice);
  const std::size_t n = positions.size();

  std::vector<std::uint8_t> types(n, 0);
  Xoshiro256 rng(2024);
  std::size_t n_cu = 0;
  for (auto& t : types) {
    if (rng.uniform() < cli.get_double("cu-fraction")) {
      t = 1;
      ++n_cu;
    }
  }
  std::vector<double> masses(n);
  for (std::size_t i = 0; i < n; ++i) masses[i] = alloy.mass(types[i]);
  std::printf("system: %zu atoms (%zu Cu, %.1f%%) in a %.2f A box\n", n,
              n_cu, 100.0 * n_cu / n, box.length(0));

  // Velocities (use the heavier species mass for the draw; rescale below
  // is global, so the temperature is still exact in aggregate).
  std::vector<Vec3> velocities(n);
  maxwell_boltzmann_velocities(velocities, units::kMassFe,
                               cli.get_double("temperature"), 55);

  // Force machinery.
  const double skin = 0.3;
  NeighborListConfig nl_cfg;
  nl_cfg.cutoff = alloy.cutoff();
  nl_cfg.skin = skin;
  NeighborList list(box, nl_cfg);
  list.build(positions);

  AlloyForceConfig force_cfg;
  force_cfg.strategy = ReductionStrategy::Sdc;
  force_cfg.sdc.dimensionality = SpatialDecomposition::
      max_feasible_dimensionality(box, alloy.cutoff() + skin);
  if (force_cfg.sdc.dimensionality == 0) {
    force_cfg.strategy = ReductionStrategy::Serial;
    std::printf("box too small for SDC; running serial forces\n");
  }
  AlloyForceComputer computer(alloy, force_cfg);
  computer.attach_schedule(box, alloy.cutoff() + skin);
  computer.on_neighbor_rebuild(positions);

  std::vector<double> rho(n), fp(n);
  std::vector<Vec3> forces(n);
  auto result =
      computer.compute(box, positions, types, list, rho, fp, forces);

  // NVE loop with per-atom masses.
  VelocityVerlet vv(units::fs_to_internal(1.0), units::kMassFe);
  std::printf("%8s %10s %16s %16s\n", "step", "T (K)", "PE (eV)",
              "Etot (eV)");
  const long steps = cli.get_int("steps");
  for (long s = 0; s <= steps; ++s) {
    if (s > 0) {
      vv.kick_drift(positions, velocities, forces, masses);
      if (list.needs_rebuild(positions)) {
        for (auto& r : positions) r = box.wrap(r);
        list.build(positions);
        computer.on_neighbor_rebuild(positions);
      }
      result =
          computer.compute(box, positions, types, list, rho, fp, forces);
      vv.kick(velocities, forces, masses);
    }
    if (s % 20 == 0) {
      double ke = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        ke += 0.5 * masses[i] * norm2(velocities[i]);
      }
      const double temp =
          2.0 * ke / (3.0 * static_cast<double>(n) * units::kBoltzmann);
      std::printf("%8ld %10.2f %16.6f %16.6f\n", s, temp,
                  result.total_energy(), result.total_energy() + ke);
    }
  }
  std::printf("\nper-species density check: mean rho(Fe) vs rho(Cu)\n");
  double rho_fe = 0.0, rho_cu = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    (types[i] == 0 ? rho_fe : rho_cu) += rho[i];
  }
  if (n_cu > 0 && n_cu < n) {
    std::printf("  Fe sites: %.3f   Cu sites: %.3f\n",
                rho_fe / static_cast<double>(n - n_cu),
                rho_cu / static_cast<double>(n_cu));
  }
  return 0;
}
