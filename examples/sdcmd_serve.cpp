// sdcmd-serve: the fault-tolerant multi-session simulation daemon.
//
// Owns a fleet of EAM simulations behind an AF_UNIX socket: clients create
// sessions, budget steps, steer dt/temperature, pull binary position
// frames, and suspend/resume — while the daemon enforces admission control,
// quarantines misbehaving sessions, checkpoints everything on SIGTERM, and
// auto-resumes the whole fleet on restart. scripts/chaos_serve.py drives
// the SIGKILL drill against this binary. See docs/serving.md.
//
// Exit codes: 0 graceful drain (SIGTERM or the drain op), 1 startup error.

#include <signal.h>

#include <iostream>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "obs/jsonl.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"

using namespace sdcmd;

namespace {

extern "C" void serve_signal_handler(int) {
  // Async-signal-safe: flip the drain flag; the serve loop notices within
  // one poll round and checkpoints every session before exiting.
  serve::SessionServer::request_drain();
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("sdcmd-serve",
                "Multi-session MD daemon with crash-safe suspend/resume");
  cli.add_option("socket", "sdcmd.sock", "AF_UNIX socket path");
  cli.add_option("root", "sessions.d", "sessions root directory");
  cli.add_option("max-sessions", "8", "admission-control session cap");
  cli.add_option("workers", "2", "step-quantum worker threads");
  cli.add_option("quantum", "25", "steps per scheduler quantum");
  cli.add_option("io-timeout", "5.0",
                 "per-connection read/write deadline (s)");
  cli.add_option("watchdog-factor", "50.0",
                 "quarantine a session when a step exceeds factor*EWMA "
                 "(0 disables)");
  cli.add_option("watchdog-min", "0.5", "watchdog deadline floor (s)");
  cli.add_option("quarantine-trips", "2",
                 "consecutive watchdog trips before quarantine");
  cli.add_option("metrics", "",
                 "write a serve.* metrics summary (JSONL) here on exit");
  cli.add_option("inject-accept-fail", "0",
                 "fault drill: drop the next N accepted connections");
  cli.add_option("inject-slow-client", "0",
                 "fault drill: expire the write deadline on the next N "
                 "responses");
  cli.add_option("inject-session-oom", "0",
                 "fault drill: fail allocation in the next N step quanta");
  cli.add_option("inject-disk-full", "0",
                 "fault drill: fail the next N checkpoint writes");
  if (!cli.parse(argc, argv)) return 1;

  if (cli.get_int("inject-accept-fail") > 0) {
    FaultInjector::instance().arm(
        faults::kServeAcceptFail, {.shots = cli.get_int("inject-accept-fail")});
  }
  if (cli.get_int("inject-slow-client") > 0) {
    FaultInjector::instance().arm(
        faults::kServeSlowClient, {.shots = cli.get_int("inject-slow-client")});
  }
  if (cli.get_int("inject-session-oom") > 0) {
    FaultInjector::instance().arm(
        faults::kServeSessionOom, {.shots = cli.get_int("inject-session-oom")});
  }
  if (cli.get_int("inject-disk-full") > 0) {
    FaultInjector::instance().arm(
        faults::kDiskFull, {.shots = cli.get_int("inject-disk-full")});
  }

  obs::MetricsRegistry registry;
  serve::ServerConfig config;
  config.socket_path = cli.get("socket");
  config.root = cli.get("root");
  config.max_sessions = cli.get_int("max-sessions");
  config.workers = cli.get_int("workers");
  config.io_timeout_s = cli.get_double("io-timeout");
  config.session.quantum_steps = cli.get_int("quantum");
  config.session.watchdog_factor = cli.get_double("watchdog-factor");
  config.session.watchdog_min_seconds = cli.get_double("watchdog-min");
  config.session.quarantine_after_trips = cli.get_int("quarantine-trips");
  config.registry = &registry;

  try {
    serve::SessionServer server(std::move(config));

    struct sigaction action {};
    action.sa_handler = serve_signal_handler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;  // no SA_RESTART: wake poll() promptly
    sigaction(SIGTERM, &action, nullptr);
    sigaction(SIGINT, &action, nullptr);

    server.start();
    std::cout << "sdcmd-serve: listening on " << cli.get("socket") << " ("
              << server.resumed_sessions() << " session(s) resumed, cap "
              << cli.get_int("max-sessions") << ")" << std::endl;
    server.wait();

    const std::string metrics_path = cli.get("metrics");
    if (!metrics_path.empty()) {
      obs::StepMetricsWriter writer(metrics_path);
      writer.write_summary(0, registry);
    }
    std::cout << "sdcmd-serve: drained clean" << std::endl;
    return 0;
  } catch (const Error& e) {
    std::cerr << "sdcmd-serve: " << e.what() << std::endl;
    return 1;
  }
}
