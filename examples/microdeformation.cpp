// Micro-deformation of bcc iron - the workload class the paper's test
// cases were designed for ("observe micro-deformation behaviors of the
// pure Fe metals material").
//
// A periodic Fe crystal is equilibrated at a low temperature, then pulled
// in uniaxial tension at a constant engineering strain rate while a
// Berendsen thermostat removes the heat of deformation. The program prints
// a stress-strain table (virial stress along the pull axis) and writes an
// extended-XYZ trajectory.
//
//   ./microdeformation [--cells 8] [--strain-rate 2e-4] [--max-strain 0.04]
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "md/dump.hpp"
#include "md/simulation.hpp"
#include "potential/finnis_sinclair.hpp"

int main(int argc, char** argv) {
  using namespace sdcmd;

  CliParser cli("microdeformation",
                "uniaxial tension on bcc Fe with EAM forces under SDC");
  cli.add_option("cells", "8", "bcc cells per box edge");
  cli.add_option("temperature", "100", "equilibration temperature (K)");
  cli.add_option("equilibration-steps", "100", "steps before pulling");
  cli.add_option("strain-rate", "2e-4", "engineering strain per step");
  cli.add_option("max-strain", "0.04", "stop after this total strain");
  cli.add_option("strategy", "sdc", "reduction strategy for the forces");
  cli.add_option("trajectory", "", "optional .xyz trajectory output path");
  cli.add_option("csv", "", "optional stress-strain CSV output path");
  if (!cli.parse(argc, argv)) return 1;

  LatticeSpec lattice;
  lattice.type = LatticeType::Bcc;
  lattice.a0 = units::kLatticeFe;
  lattice.nx = lattice.ny = lattice.nz = cli.get_int("cells");

  FinnisSinclair iron(FinnisSinclairParams::iron());
  SimulationConfig config;
  config.dt = units::fs_to_internal(1.0);
  config.force.strategy = parse_strategy(cli.get("strategy"));
  config.force.sdc.dimensionality = 2;

  Simulation sim(System::from_lattice(lattice, units::kMassFe), iron,
                 config);
  const double temperature = cli.get_double("temperature");
  sim.set_temperature(temperature, 77);
  sim.set_thermostat(
      std::make_unique<BerendsenThermostat>(temperature, 0.05));

  std::printf("equilibrating %zu atoms at %.0f K...\n", sim.system().size(),
              temperature);
  sim.run(cli.get_int("equilibration-steps"));

  const double rate = cli.get_double("strain-rate");
  const double max_strain = cli.get_double("max-strain");
  sim.set_deformer(BoxDeformer::uniaxial(0, rate), 1);

  const std::string trajectory = cli.get("trajectory");
  std::unique_ptr<CsvWriter> csv;
  if (!cli.get("csv").empty()) {
    csv = std::make_unique<CsvWriter>(
        cli.get("csv"),
        std::vector<std::string>{"strain", "stress_gpa", "temperature"});
  }

  std::printf("%10s %14s %10s\n", "strain", "stress (GPa)", "T (K)");
  double strain = 0.0;
  while (strain < max_strain) {
    sim.run(10);
    strain = (1.0 + strain) * std::pow(1.0 + rate, 10) - 1.0;
    const ThermoSample t = sim.sample();
    // Tension shows up as negative pressure; report tensile stress > 0.
    const double stress_gpa = -t.pressure * units::kEvPerA3ToGPa;
    std::printf("%10.4f %14.4f %10.1f\n", strain, stress_gpa,
                t.temperature);
    if (csv) {
      csv->add_row({AsciiTable::fmt(strain, 6),
                    AsciiTable::fmt(stress_gpa, 6),
                    AsciiTable::fmt(t.temperature, 2)});
    }
    if (!trajectory.empty()) {
      append_xyz_file(trajectory, sim.system(), "Fe",
                      "strain=" + AsciiTable::fmt(strain, 4));
    }
  }
  std::printf("final box: %.3f x %.3f x %.3f A\n",
              sim.system().box().length(0), sim.system().box().length(1),
              sim.system().box().length(2));
  return 0;
}
