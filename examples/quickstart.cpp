// Quickstart: the smallest end-to-end sdcmd program.
//
// Builds a bcc iron cube, gives it a 300 K Maxwell-Boltzmann velocity
// distribution, and runs NVE molecular dynamics with the Finnis-Sinclair
// EAM potential parallelized by the paper's 2-D Spatial Decomposition
// Coloring strategy. Prints a thermo line every 20 steps.
//
//   ./quickstart [--cells 8] [--steps 200] [--temperature 300]
//                [--strategy sdc] [--threads N]
#include <cstdio>

#include "common/cli.hpp"
#include "common/threads.hpp"
#include "common/units.hpp"
#include "md/simulation.hpp"
#include "potential/finnis_sinclair.hpp"

int main(int argc, char** argv) {
  using namespace sdcmd;

  CliParser cli("quickstart", "minimal sdcmd MD run (bcc Fe, EAM, NVE)");
  cli.add_option("cells", "8", "bcc cells per box edge");
  cli.add_option("steps", "200", "MD steps to run");
  cli.add_option("temperature", "300", "initial temperature (K)");
  cli.add_option("strategy", "sdc",
                 "serial|critical|atomic|sap|rc|sdc reduction strategy");
  cli.add_option("sdc-dims", "2", "SDC dimensionality (1, 2 or 3)");
  cli.add_option("threads", "0", "OpenMP threads (0 = runtime default)");
  if (!cli.parse(argc, argv)) return 1;

  if (cli.get_int("threads") > 0) set_threads(cli.get_int("threads"));

  // 1. Build the crystal.
  LatticeSpec lattice;
  lattice.type = LatticeType::Bcc;
  lattice.a0 = units::kLatticeFe;
  lattice.nx = lattice.ny = lattice.nz = cli.get_int("cells");
  System system = System::from_lattice(lattice, units::kMassFe);
  std::printf("system: %zu Fe atoms in a %.2f A box (%s)\n", system.size(),
              system.box().length(0), thread_summary().c_str());

  // 2. Choose the potential and the parallelization strategy.
  FinnisSinclair iron(FinnisSinclairParams::iron());
  SimulationConfig config;
  config.dt = units::fs_to_internal(1.0);
  config.force.strategy = parse_strategy(cli.get("strategy"));
  config.force.sdc.dimensionality = cli.get_int("sdc-dims");

  // Tiny boxes cannot hold two 2*(cutoff+skin) subdomains; degrade to the
  // largest feasible SDC dimensionality, or serial forces.
  if (config.force.strategy == ReductionStrategy::Sdc) {
    const int feasible = SpatialDecomposition::max_feasible_dimensionality(
        system.box(), iron.cutoff() + config.skin);
    if (feasible == 0) {
      std::printf("box too small for SDC; falling back to serial forces\n");
      config.force.strategy = ReductionStrategy::Serial;
    } else if (feasible < config.force.sdc.dimensionality) {
      config.force.sdc.dimensionality = feasible;
    }
  }

  // 3. Run NVE dynamics.
  Simulation sim(std::move(system), iron, config);
  sim.set_temperature(cli.get_double("temperature"), /*seed=*/2009);
  sim.compute_forces();

  std::printf("%8s %10s %14s %14s %14s\n", "step", "T (K)", "PE (eV)",
              "KE (eV)", "Etot (eV)");
  const auto report = [](const Simulation& s, long step) {
    const ThermoSample t = s.sample();
    std::printf("%8ld %10.2f %14.6f %14.6f %14.6f\n", step, t.temperature,
                t.potential_energy(), t.kinetic_energy, t.total_energy());
  };
  report(sim, 0);
  sim.run(cli.get_int("steps"), report, 20);

  const auto timers = sim.force_computer().timers().entries();
  std::printf("\nforce-phase wall time:\n");
  for (const auto& t : timers) {
    std::printf("  %-8s %8.3f s over %zu calls\n", t.name.c_str(), t.seconds,
                t.laps);
  }
  return 0;
}
