// Defect creation and detection: knock vacancies into a bcc iron crystal,
// anneal briefly, and locate the damage with the analysis toolkit
// (coordination numbers, per-atom von Mises stress, RDF).
//
//   ./defect_analysis [--cells 6] [--vacancies 5] [--anneal-steps 100]
#include <algorithm>
#include <cstdio>

#include "analysis/coordination.hpp"
#include "analysis/rdf.hpp"
#include "analysis/stress.hpp"
#include "common/cli.hpp"
#include "common/random.hpp"
#include "common/units.hpp"
#include "md/simulation.hpp"
#include "potential/finnis_sinclair.hpp"

int main(int argc, char** argv) {
  using namespace sdcmd;

  CliParser cli("defect_analysis",
                "vacancy creation + detection in bcc Fe");
  cli.add_option("cells", "6", "bcc cells per box edge");
  cli.add_option("vacancies", "5", "atoms to remove");
  cli.add_option("anneal-steps", "100", "MD steps after damage");
  cli.add_option("temperature", "150", "anneal temperature (K)");
  if (!cli.parse(argc, argv)) return 1;

  LatticeSpec lattice;
  lattice.type = LatticeType::Bcc;
  lattice.a0 = units::kLatticeFe;
  lattice.nx = lattice.ny = lattice.nz = cli.get_int("cells");

  // Build the crystal, then delete random atoms (vacancies).
  auto positions = build_lattice(lattice);
  const auto n_vac = static_cast<std::size_t>(cli.get_int("vacancies"));
  Xoshiro256 rng(1414);
  for (std::size_t v = 0; v < n_vac && !positions.empty(); ++v) {
    const std::size_t victim = rng.below(positions.size());
    positions.erase(positions.begin() +
                    static_cast<std::ptrdiff_t>(victim));
  }
  System system(lattice.box(), Atoms(std::move(positions)), units::kMassFe);
  std::printf("crystal: %zu atoms after removing %zu (perfect: %zu)\n",
              system.size(), n_vac, lattice.atom_count());

  // Short anneal so neighbors of the vacancies relax inward.
  FinnisSinclair iron(FinnisSinclairParams::iron());
  SimulationConfig config;
  config.dt = units::fs_to_internal(1.0);
  config.force.strategy = ReductionStrategy::Sdc;
  config.force.sdc.dimensionality = SpatialDecomposition::
      max_feasible_dimensionality(system.box(), iron.cutoff() + config.skin);
  if (config.force.sdc.dimensionality == 0) {
    config.force.strategy = ReductionStrategy::Serial;
  }
  Simulation sim(std::move(system), iron, config);
  const double temperature = cli.get_double("temperature");
  sim.set_temperature(temperature, 7);
  sim.set_thermostat(
      std::make_unique<BerendsenThermostat>(temperature, 0.05));
  sim.run(cli.get_int("anneal-steps"));

  // 1. Coordination analysis: under-coordinated atoms ring the vacancies.
  const double detect_cutoff = 3.2;  // between bcc shells 2 and 3
  const auto coordination = coordination_numbers(
      sim.system().box(), sim.system().atoms().position, detect_cutoff);
  const int expected =
      bcc_coordination_within(units::kLatticeFe, detect_cutoff);
  std::printf("\ncoordination within %.1f A (perfect bcc: %d):\n",
              detect_cutoff, expected);
  for (const auto& [count, how_many] : coordination.histogram) {
    std::printf("  %2d neighbors: %6zu atoms\n", count, how_many);
  }
  const auto defects = coordination.defects(expected);
  std::printf("flagged %zu defect-adjacent atoms (~%zu per vacancy)\n",
              defects.size(), n_vac ? defects.size() / n_vac : 0);

  // 2. Per-atom stress: vacancy neighbors carry elevated von Mises stress.
  sim.compute_forces();
  PerAtomStress stress_engine(iron);
  std::vector<StressTensor> stresses;
  stress_engine.compute(sim.system().box(), sim.system().atoms().position,
                        sim.system().atoms().velocity, sim.system().mass(),
                        sim.neighbor_list(), sim.system().atoms().fp,
                        stresses);
  double defect_vm = 0.0, bulk_vm = 0.0;
  std::size_t bulk_count = 0;
  for (std::size_t i = 0; i < stresses.size(); ++i) {
    const bool is_defect =
        std::find(defects.begin(), defects.end(), i) != defects.end();
    (is_defect ? defect_vm : bulk_vm) += stresses[i].von_mises();
    if (!is_defect) ++bulk_count;
  }
  if (!defects.empty() && bulk_count > 0) {
    std::printf(
        "mean von Mises stress: defect atoms %.4f eV/A^3, bulk %.4f "
        "eV/A^3 (ratio %.1fx)\n",
        defect_vm / static_cast<double>(defects.size()),
        bulk_vm / static_cast<double>(bulk_count),
        (defect_vm / static_cast<double>(defects.size())) /
            (bulk_vm / static_cast<double>(bulk_count) + 1e-30));
  }

  // 3. RDF still shows a crystal (vacancies are point defects).
  Rdf rdf(5.0, 100);
  rdf.accumulate(sim.system().box(), sim.system().atoms().position);
  const auto g = rdf.g();
  const auto r = rdf.radii();
  double peak_g = 0.0, peak_r = 0.0;
  for (std::size_t b = 0; b < g.size(); ++b) {
    if (g[b] > peak_g) {
      peak_g = g[b];
      peak_r = r[b];
    }
  }
  std::printf("g(r) peak %.1f at r = %.3f A (bcc first shell: %.3f A)\n",
              peak_g, peak_r, units::kLatticeFe * std::sqrt(3.0) / 2.0);
  return 0;
}
