// Fault drill: exercise the simulation guardrails end to end.
//
// Runs guarded NVE dynamics on bcc iron while the fault injector
// deliberately poisons a force evaluation with NaN mid-run. The health
// monitor detects the blowup, rolls the simulation back to the last good
// snapshot (halving dt), and the run still completes. Good snapshots are
// mirrored to a crash-safe on-disk checkpoint, which the drill then
// corrupts with an injected short write to show the previous file
// survives with a valid checksum.
//
// Drill 4 switches to the strategy governor: an injected box shrink drops
// the cell below the SDC feasibility bound mid-run and the governor
// demotes to array privatization instead of racing or dying with
// InfeasibleError, with the swap visible in step-metrics JSONL.
//
//   ./fault_drill [--cells 6] [--steps 200] [--fault-step 60]
//                 [--checkpoint fault_drill.chk]
//                 [--governor-jsonl fault_drill_governor.jsonl]
#include <cstdio>
#include <exception>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/units.hpp"
#include "io/checkpoint.hpp"
#include "md/simulation.hpp"
#include "obs/jsonl.hpp"
#include "obs/metrics.hpp"
#include "potential/finnis_sinclair.hpp"

int main(int argc, char** argv) {
  using namespace sdcmd;

  CliParser cli("fault_drill",
                "guardrail demo: injected NaN -> rollback -> completion");
  cli.add_option("cells", "6", "bcc cells per box edge");
  cli.add_option("steps", "200", "MD steps to run");
  cli.add_option("fault-step", "60", "step whose force evaluation gets NaN");
  cli.add_option("checkpoint", "fault_drill.chk", "auto-checkpoint path");
  cli.add_option("governor-jsonl", "fault_drill_governor.jsonl",
                 "step-metrics JSONL written by the governor drill");
  if (!cli.parse(argc, argv)) return 1;

  LatticeSpec lattice;
  lattice.type = LatticeType::Bcc;
  lattice.a0 = units::kLatticeFe;
  lattice.nx = lattice.ny = lattice.nz = cli.get_int("cells");
  System system = System::from_lattice(lattice, units::kMassFe);

  FinnisSinclair iron(FinnisSinclairParams::iron());
  SimulationConfig config;
  config.dt = units::fs_to_internal(1.0);
  config.force.strategy = ReductionStrategy::Serial;

  const std::string path = cli.get("checkpoint");
  GuardrailConfig guard;
  guard.health.cadence = 10;
  guard.health.policy = HealthPolicy::Rollback;
  guard.checkpoint_every = 50;
  guard.checkpoint_sink = [&path](const System& s, long step) {
    save_checkpoint_file(path, s, step);
    std::printf("  [checkpoint] step %ld -> %s\n", step, path.c_str());
  };

  Simulation sim(std::move(system), iron, config);
  sim.set_guardrails(guard);

  // Force evaluations: one at run() start, then one per step, so a
  // countdown of N poisons the evaluation inside step N.
  FaultSpec nan_fault;
  nan_fault.countdown = cli.get_int("fault-step");
  FaultInjector::instance().arm(faults::kForceNan, nan_fault);

  const long steps = cli.get_int("steps");
  std::printf("drill 1: NaN force injected at step %ld of %ld\n",
              nan_fault.countdown, steps);
  try {
    sim.run(steps);
  } catch (const HealthError& e) {
    // Reachable with --fault-step 0 (the baseline is poisoned before any
    // snapshot exists) or when the rollback budget runs out.
    std::printf("  unrecoverable: %s\n", e.what());
    return 1;
  }
  std::printf(
      "  reached step %ld with %d rollback(s); dt now %.3f fs; last "
      "health report: %s\n",
      sim.current_step(), sim.rollback_count(),
      units::internal_to_fs(sim.config().dt),
      sim.health_monitor()->last_report().summary().c_str());

  std::printf("drill 2: crash (short write) during the next checkpoint\n");
  const Checkpoint before = load_checkpoint_file(path);
  FaultSpec short_write;
  short_write.magnitude = 0.5;  // keep only half the payload
  FaultInjector::instance().arm(faults::kCheckpointShortWrite, short_write);
  try {
    save_checkpoint_file(path, sim.system(), sim.current_step());
    std::printf("  ERROR: the injected crash did not fire\n");
    return 1;
  } catch (const std::exception& e) {
    std::printf("  save failed as injected: %s\n", e.what());
  }
  const Checkpoint after = load_checkpoint_file(path);
  std::printf(
      "  previous checkpoint survived: step %ld, %zu atoms, checksum ok\n",
      after.step, after.system.size());

  std::printf("drill 3: restart from the surviving checkpoint\n");
  Simulation resumed(after.system, iron, config);
  resumed.run(20);
  const ThermoSample t = resumed.sample();
  std::printf("  resumed %ld -> %ld steps, Etot %.6f eV\n", before.step,
              before.step + resumed.current_step(), t.total_energy());

  std::printf("drill 4: box shrink below the SDC feasibility bound\n");
  FaultInjector::instance().disarm_all();
  lattice.nx = lattice.ny = lattice.nz = 6;  // 2-D SDC feasible, barely
  SimulationConfig sdc_cfg;
  sdc_cfg.dt = units::fs_to_internal(1.0);
  sdc_cfg.force.strategy = ReductionStrategy::Sdc;
  Simulation governed(System::from_lattice(lattice, units::kMassFe), iron,
                      sdc_cfg);
  governed.set_temperature(100.0, 42);

  const std::string jsonl = cli.get("governor-jsonl");
  obs::MetricsRegistry registry;
  obs::StepMetricsWriter writer(jsonl);
  InstrumentationConfig inst;
  inst.registry = &registry;
  inst.step_writer = &writer;
  governed.set_instrumentation(inst);
  governed.set_governor(GovernorConfig{});
  std::printf("  governor starts on %s\n",
              to_string(governed.governor()->active()).c_str());

  FaultSpec shrink;
  shrink.countdown = 5;
  shrink.magnitude = 0.9;  // 17.2 A -> 15.5 A, below the ~15.9 A bound
  FaultInjector::instance().arm(faults::kBoxShrink, shrink);
  try {
    governed.run(20);
  } catch (const InfeasibleError& e) {
    std::printf("  ERROR: governor failed to absorb the shrink: %s\n",
                e.what());
    return 1;
  }
  const StrategyGovernor& gov = *governed.governor();
  std::printf("  shrink fired %ld time(s); now on %s after %ld demotion(s)\n",
              FaultInjector::instance().fire_count(faults::kBoxShrink),
              to_string(gov.active()).c_str(), gov.demotions());
  std::printf("  %zu step records -> %s\n", writer.records(), jsonl.c_str());
  if (gov.demotions() != 1 || gov.active() == ReductionStrategy::Sdc) {
    std::printf("  ERROR: expected exactly one demotion off Sdc\n");
    return 1;
  }

  FaultInjector::instance().disarm_all();
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  return 0;
}
