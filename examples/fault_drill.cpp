// Fault drill: exercise the simulation guardrails end to end.
//
// Runs guarded NVE dynamics on bcc iron while the fault injector
// deliberately poisons a force evaluation with NaN mid-run. The health
// monitor detects the blowup, rolls the simulation back to the last good
// snapshot (halving dt), and the run still completes. Good snapshots are
// mirrored to a crash-safe on-disk checkpoint, which the drill then
// corrupts with an injected short write to show the previous file
// survives with a valid checksum.
//
//   ./fault_drill [--cells 6] [--steps 200] [--fault-step 60]
//                 [--checkpoint fault_drill.chk]
#include <cstdio>
#include <exception>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/units.hpp"
#include "io/checkpoint.hpp"
#include "md/simulation.hpp"
#include "potential/finnis_sinclair.hpp"

int main(int argc, char** argv) {
  using namespace sdcmd;

  CliParser cli("fault_drill",
                "guardrail demo: injected NaN -> rollback -> completion");
  cli.add_option("cells", "6", "bcc cells per box edge");
  cli.add_option("steps", "200", "MD steps to run");
  cli.add_option("fault-step", "60", "step whose force evaluation gets NaN");
  cli.add_option("checkpoint", "fault_drill.chk", "auto-checkpoint path");
  if (!cli.parse(argc, argv)) return 1;

  LatticeSpec lattice;
  lattice.type = LatticeType::Bcc;
  lattice.a0 = units::kLatticeFe;
  lattice.nx = lattice.ny = lattice.nz = cli.get_int("cells");
  System system = System::from_lattice(lattice, units::kMassFe);

  FinnisSinclair iron(FinnisSinclairParams::iron());
  SimulationConfig config;
  config.dt = units::fs_to_internal(1.0);
  config.force.strategy = ReductionStrategy::Serial;

  const std::string path = cli.get("checkpoint");
  GuardrailConfig guard;
  guard.health.cadence = 10;
  guard.health.policy = HealthPolicy::Rollback;
  guard.checkpoint_every = 50;
  guard.checkpoint_sink = [&path](const System& s, long step) {
    save_checkpoint_file(path, s, step);
    std::printf("  [checkpoint] step %ld -> %s\n", step, path.c_str());
  };

  Simulation sim(std::move(system), iron, config);
  sim.set_guardrails(guard);

  // Force evaluations: one at run() start, then one per step, so a
  // countdown of N poisons the evaluation inside step N.
  FaultSpec nan_fault;
  nan_fault.countdown = cli.get_int("fault-step");
  FaultInjector::instance().arm(faults::kForceNan, nan_fault);

  const long steps = cli.get_int("steps");
  std::printf("drill 1: NaN force injected at step %ld of %ld\n",
              nan_fault.countdown, steps);
  try {
    sim.run(steps);
  } catch (const HealthError& e) {
    // Reachable with --fault-step 0 (the baseline is poisoned before any
    // snapshot exists) or when the rollback budget runs out.
    std::printf("  unrecoverable: %s\n", e.what());
    return 1;
  }
  std::printf(
      "  reached step %ld with %d rollback(s); dt now %.3f fs; last "
      "health report: %s\n",
      sim.current_step(), sim.rollback_count(),
      units::internal_to_fs(sim.config().dt),
      sim.health_monitor()->last_report().summary().c_str());

  std::printf("drill 2: crash (short write) during the next checkpoint\n");
  const Checkpoint before = load_checkpoint_file(path);
  FaultSpec short_write;
  short_write.magnitude = 0.5;  // keep only half the payload
  FaultInjector::instance().arm(faults::kCheckpointShortWrite, short_write);
  try {
    save_checkpoint_file(path, sim.system(), sim.current_step());
    std::printf("  ERROR: the injected crash did not fire\n");
    return 1;
  } catch (const std::exception& e) {
    std::printf("  save failed as injected: %s\n", e.what());
  }
  const Checkpoint after = load_checkpoint_file(path);
  std::printf(
      "  previous checkpoint survived: step %ld, %zu atoms, checksum ok\n",
      after.step, after.system.size());

  std::printf("drill 3: restart from the surviving checkpoint\n");
  Simulation resumed(after.system, iron, config);
  resumed.run(20);
  const ThermoSample t = resumed.sample();
  std::printf("  resumed %ld -> %ld steps, Etot %.6f eV\n", before.step,
              before.step + resumed.current_step(), t.total_energy());

  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  return 0;
}
