// Melt-and-quench: drive a bcc iron crystal far above its melting point
// with a Langevin thermostat, watch the crystal lose its order, then quench
// it back down. Demonstrates thermostats, long runs with many neighbor-list
// rebuilds, and thermo monitoring under the SDC-parallelized EAM forces.
//
//   ./melt_quench [--cells 6] [--hot 4000] [--cold 300]
#include <cstdio>

#include "common/cli.hpp"
#include "common/units.hpp"
#include "md/simulation.hpp"
#include "potential/finnis_sinclair.hpp"

int main(int argc, char** argv) {
  using namespace sdcmd;

  CliParser cli("melt_quench", "melt and re-quench a bcc Fe crystal");
  cli.add_option("cells", "6", "bcc cells per box edge");
  cli.add_option("hot", "4000", "melt temperature (K)");
  cli.add_option("cold", "300", "quench temperature (K)");
  cli.add_option("phase-steps", "300", "steps per phase");
  cli.add_option("strategy", "sdc", "reduction strategy");
  if (!cli.parse(argc, argv)) return 1;

  LatticeSpec lattice;
  lattice.type = LatticeType::Bcc;
  lattice.a0 = units::kLatticeFe;
  lattice.nx = lattice.ny = lattice.nz = cli.get_int("cells");

  FinnisSinclair iron(FinnisSinclairParams::iron());
  SimulationConfig config;
  config.dt = units::fs_to_internal(1.0);
  config.force.strategy = parse_strategy(cli.get("strategy"));

  // Prefer 3-D SDC but degrade gracefully on boxes too small to split.
  if (config.force.strategy == ReductionStrategy::Sdc) {
    const int dims = SpatialDecomposition::max_feasible_dimensionality(
        lattice.box(), iron.cutoff() + config.skin);
    if (dims == 0) {
      std::printf("box too small for SDC; falling back to serial forces\n");
      config.force.strategy = ReductionStrategy::Serial;
    } else {
      config.force.sdc.dimensionality = dims;
    }
  }

  Simulation sim(System::from_lattice(lattice, units::kMassFe), iron,
                 config);

  const auto report = [](const Simulation& s, long step) {
    const ThermoSample t = s.sample();
    std::printf("%8ld %10.1f %14.6f %14.6f\n", step, t.temperature,
                t.potential_energy() / static_cast<double>(s.system().size()),
                t.total_energy());
  };
  const long steps = cli.get_int("phase-steps");
  std::printf("%8s %10s %14s %14s\n", "step", "T (K)", "PE/atom", "Etot");

  const double hot = cli.get_double("hot");
  const double cold = cli.get_double("cold");

  std::printf("-- phase 1: heat to %.0f K\n", hot);
  sim.set_temperature(cold, 123);
  sim.set_thermostat(std::make_unique<LangevinThermostat>(hot, 2.0, 99));
  sim.run(steps, report, 50);
  const double pe_hot =
      sim.sample().potential_energy() / static_cast<double>(sim.system().size());

  std::printf("-- phase 2: hold at %.0f K\n", hot);
  sim.set_thermostat(std::make_unique<BerendsenThermostat>(hot, 0.1));
  sim.run(steps, report, 50);

  std::printf("-- phase 3: quench to %.0f K\n", cold);
  sim.set_thermostat(std::make_unique<BerendsenThermostat>(cold, 0.05));
  sim.run(steps, report, 50);
  const double pe_quenched =
      sim.sample().potential_energy() / static_cast<double>(sim.system().size());

  std::printf(
      "\nmolten PE/atom %.4f eV, quenched PE/atom %.4f eV "
      "(perfect bcc is lower still; the gap is the stored disorder)\n",
      pe_hot, pe_quenched);
  std::printf("neighbor-list rebuilds during the run: %zu\n",
              sim.rebuild_count());
  return 0;
}
