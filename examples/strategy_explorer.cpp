// Interactive comparison of the irregular-reduction strategies on a
// user-sized workload: the command-line twin of the Fig. 9 bench.
//
//   ./strategy_explorer --cells 10 --threads 1,2,4 --steps 3
//
// Prints per-strategy density+force wall time, the speedup against the
// serial kernel, and the mechanism counters (pair visits, replicated
// bytes) that explain the differences.
#include <cstdio>

#include "benchsupport/cases.hpp"
#include "benchsupport/sweep.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/threads.hpp"
#include "potential/finnis_sinclair.hpp"

int main(int argc, char** argv) {
  using namespace sdcmd;
  using namespace sdcmd::bench;

  CliParser cli("strategy_explorer",
                "compare reduction strategies on one workload");
  cli.add_option("cells", "10", "bcc cells per box edge");
  cli.add_option("threads", "1,2,4", "comma list of thread counts");
  cli.add_option("steps", "3", "timed force evaluations per configuration");
  cli.add_option("sdc-dims", "2", "SDC dimensionality");
  if (!cli.parse(argc, argv)) return 1;

  TestCase test_case{"custom", cli.get_int("cells")};
  FinnisSinclair iron(FinnisSinclairParams::iron());
  CaseRunner runner(test_case, iron);
  const int steps = cli.get_int("steps");

  std::printf("workload: %zu Fe atoms, %s\n\n", test_case.atom_count(),
              thread_summary().c_str());

  const double serial = runner.serial_seconds_per_step(steps);
  std::printf("serial density+force: %.4f s/step\n\n", serial);

  AsciiTable table({"strategy", "threads", "s/step", "speedup",
                    "pair visits", "private MiB"});
  for (ReductionStrategy strategy :
       {ReductionStrategy::Critical, ReductionStrategy::Atomic,
        ReductionStrategy::LockStriped,
        ReductionStrategy::ArrayPrivatization,
        ReductionStrategy::RedundantComputation, ReductionStrategy::Sdc}) {
    for (int threads : cli.get_int_list("threads")) {
      EamForceConfig cfg;
      cfg.strategy = strategy;
      cfg.sdc.dimensionality = cli.get_int("sdc-dims");
      const auto timing = runner.time_strategy(cfg, threads, steps);
      if (!timing) {
        table.add_row({to_string(strategy), std::to_string(threads), "-",
                       "-", "-", "-"});
        continue;
      }
      table.add_row(
          {to_string(strategy), std::to_string(threads),
           AsciiTable::fmt(timing->density_force_seconds, 4),
           AsciiTable::fmt(serial / timing->density_force_seconds, 2),
           std::to_string(timing->pair_visits),
           AsciiTable::fmt(static_cast<double>(timing->private_bytes) /
                               (1024.0 * 1024.0),
                           2)});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nreading the counters: RC visits ~2x the pairs (full lists);\n"
      "SAP's private MiB grows with the thread count; SDC needs neither.\n");
  return 0;
}
