// SDC beyond molecular dynamics: the generic colored scatter engine on a
// non-MD irregular reduction (the paper's conclusion claims this
// generality; this example demonstrates it).
//
// Problem: iterative local mass diffusion over a random point cloud - each
// point repeatedly exchanges mass with every neighbor within a range. The
// scatter updates hit neighbors' slots, so a naive `parallel for` races
// exactly like the EAM density loop. The colored engine runs it safely and
// this program verifies parallel == serial and conservation of mass.
//
//   ./irregular_reduction [--points 20000] [--sweeps 20]
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/random.hpp"
#include "common/stats.hpp"
#include "common/threads.hpp"
#include "common/timer.hpp"
#include "core/colored_reduction.hpp"
#include "neighbor/neighbor_list.hpp"

int main(int argc, char** argv) {
  using namespace sdcmd;

  CliParser cli("irregular_reduction",
                "colored scatter engine on a non-MD reduction problem");
  cli.add_option("points", "20000", "cloud size");
  cli.add_option("sweeps", "20", "diffusion sweeps");
  cli.add_option("box", "40", "cubic box edge");
  cli.add_option("range", "2.5", "interaction range");
  if (!cli.parse(argc, argv)) return 1;

  const auto n = static_cast<std::size_t>(cli.get_int("points"));
  const double edge = cli.get_double("box");
  const double range = cli.get_double("range");
  const Box box = Box::cubic(edge);

  Xoshiro256 rng(2009);
  std::vector<Vec3> points(n);
  std::vector<double> mass(n);
  for (std::size_t i = 0; i < n; ++i) {
    points[i] = {rng.uniform(0.0, edge), rng.uniform(0.0, edge),
                 rng.uniform(0.0, edge)};
    mass[i] = rng.uniform(0.0, 2.0);
  }

  NeighborListConfig nl_cfg;
  nl_cfg.cutoff = range;
  nl_cfg.skin = 0.0;
  NeighborList list(box, nl_cfg);
  list.build(points);

  SdcConfig sdc;
  sdc.dimensionality = 3;
  ColoredScatterEngine engine(box, range, sdc);
  engine.rebuild(points);
  std::printf("cloud: %zu points, %.1f neighbors/point, %s\n", n,
              list.mean_neighbors(), engine.schedule().describe().c_str());
  std::printf("running on %s\n\n", thread_summary().c_str());

  auto sweep = [&](std::vector<double>& m, bool parallel) {
    auto body = [&](std::size_t i) {
      for (std::uint32_t j : list.neighbors(i)) {
        const double flow = 0.05 * (m[i] - m[j]);
        m[i] -= flow;
        m[j] += flow;
      }
    };
    if (parallel) {
      engine.for_each_point_colored(body);
    } else {
      engine.for_each_point_serial(body);
    }
  };

  const int sweeps = cli.get_int("sweeps");
  std::vector<double> serial = mass;
  std::vector<double> parallel = mass;

  Stopwatch serial_watch, parallel_watch;
  serial_watch.start();
  for (int s = 0; s < sweeps; ++s) sweep(serial, false);
  serial_watch.stop();
  parallel_watch.start();
  for (int s = 0; s < sweeps; ++s) sweep(parallel, true);
  parallel_watch.stop();

  double max_diff = 0.0, total_before = 0.0, total_after = 0.0;
  RunningStats spread;
  for (std::size_t i = 0; i < n; ++i) {
    max_diff = std::max(max_diff, std::abs(serial[i] - parallel[i]));
    total_before += mass[i];
    total_after += parallel[i];
    spread.add(parallel[i]);
  }

  std::printf("serial   %.4f s\nparallel %.4f s\n", serial_watch.total(),
              parallel_watch.total());
  std::printf("max |serial - parallel| per point: %.3e\n", max_diff);
  std::printf("mass before %.6f, after %.6f (conserved to %.1e)\n",
              total_before, total_after,
              std::abs(total_after - total_before));
  std::printf("mass spread after %d sweeps: stddev %.4f (was ~0.577)\n",
              sweeps, spread.stddev());
  return max_diff < 1e-9 ? 0 : 1;
}
