// sdcmd-run: supervised production driver with a durable run directory.
//
// Wraps the standard bcc-iron EAM workload in the run supervisor
// (src/run/): crash-safe checkpoint ring with keep-last-K retention,
// run_state.v1 sidecar, auto-resume, retry-with-backoff checkpoint writes,
// SIGTERM/SIGINT checkpoint-then-clean-exit, and a wall-clock watchdog.
// Kill it at any moment — `--resume` continues from the newest valid ring
// generation with the original step numbering, the rollback-adjusted dt,
// and the governor's demoted rung intact.
//
//   ./sdcmd-run --run-dir my_run.d --steps 5000 --checkpoint-every 100
//   kill -TERM <pid>                   # checkpoints, exits with code 3
//   ./sdcmd-run --run-dir my_run.d --steps 5000 --resume
//
// Exit codes (asserted by scripts/chaos_resume.py):
//   0  reached the target step
//   1  error (bad flags, config-hash mismatch, energy discontinuity)
//   3  signal-driven graceful shutdown (checkpointed)
//   4  wall-clock budget expired (checkpointed)
#include <cmath>
#include <cstdio>
#include <exception>
#include <string>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/hash.hpp"
#include "common/units.hpp"
#include "md/simulation.hpp"
#include "obs/jsonl.hpp"
#include "obs/metrics.hpp"
#include "potential/finnis_sinclair.hpp"
#include "run/run_dir.hpp"
#include "run/supervisor.hpp"

int main(int argc, char** argv) {
  using namespace sdcmd;
  using namespace sdcmd::run;

  // Line-buffer stdout even when it is a pipe: the chaos harness SIGKILLs
  // this process and still needs the resume/continuity lines it printed.
  std::setvbuf(stdout, nullptr, _IOLBF, 0);

  CliParser cli("sdcmd-run",
                "supervised MD run: durable run directory, auto-resume, "
                "graceful shutdown");
  cli.add_option("run-dir", "sdcmd_run.d", "durable run directory");
  cli.add_flag("resume", "resume from the newest valid ring checkpoint");
  cli.add_option("keep", "3", "checkpoint retention ring size");
  cli.add_option("max-wall", "0", "wall-clock budget in seconds (0 = off)");
  cli.add_option("cells", "5", "bcc cells per box edge");
  cli.add_option("steps", "1000", "absolute target step");
  cli.add_option("temp", "300", "initial temperature (K, fresh starts only)");
  cli.add_option("seed", "12345", "velocity RNG seed");
  cli.add_option("dt-fs", "1.0", "time step in fs");
  cli.add_option("strategy", "sdc", "preferred governor rung");
  cli.add_flag("no-governor", "run the fixed strategy without the governor");
  cli.add_option("checkpoint-every", "100", "checkpoint cadence (steps)");
  cli.add_option("thermo-every", "200", "thermo print cadence (0 = quiet)");
  cli.add_option("jsonl", "", "step-metrics JSONL output path (optional)");
  cli.add_flag("hw-counters",
               "per-phase hardware counters (hw.* gauges; no-op when "
               "perf_event_open is unavailable)");
  cli.add_option("watchdog-min", "1.0",
                 "watchdog floor in seconds (0 disables the watchdog)");
  cli.add_option("inject-disk-full", "0",
                 "arm run.disk_full for N checkpoint write attempts (drill)");
  cli.add_flag("inject-torn-manifest",
               "tear the next MANIFEST write (drill)");
  if (!cli.parse(argc, argv)) return exit_code::kError;

  const int cells = cli.get_int("cells");
  const long target = cli.get_int("steps");
  const double temp = cli.get_double("temp");
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const double dt = units::fs_to_internal(cli.get_double("dt-fs"));
  const bool governed = !cli.get_bool("no-governor");
  const ReductionStrategy preferred = parse_strategy(cli.get("strategy"));

  // Everything that determines the trajectory goes into the fingerprint;
  // resuming with different physics flags is refused, not silently blended.
  std::uint64_t config_hash = kFnv1a64Offset;
  config_hash = fnv1a64_mix(config_hash, cells);
  config_hash = fnv1a64_mix(config_hash, dt);
  config_hash = fnv1a64_mix(config_hash, temp);
  config_hash = fnv1a64_mix(config_hash, seed);
  config_hash = fnv1a64_mix(config_hash, governed);
  config_hash =
      fnv1a64_mix(config_hash, StrategyGovernor::strategy_code(preferred));

  try {
    RunDir dir(cli.get("run-dir"), cli.get_int("keep"));

    std::optional<ResumePoint> resume;
    if (cli.get_bool("resume")) {
      resume = dir.try_resume();
      if (!resume) {
        std::printf("sdcmd-run: nothing to resume in %s; starting fresh\n",
                    dir.path().c_str());
      }
    } else if (!dir.scan_ring().empty()) {
      std::fprintf(stderr,
                   "sdcmd-run: %s already holds checkpoints; pass --resume "
                   "to continue that run or point --run-dir elsewhere\n",
                   dir.path().c_str());
      return exit_code::kError;
    }

    SimulationConfig config;
    config.dt = dt;
    config.force.strategy =
        governed ? ReductionStrategy::Serial : preferred;
    if (resume && resume->state_valid && resume->state.has_governor) {
      // Construct on the checkpointed (possibly demoted) rung: the saved
      // box may be infeasible for the preferred one.
      config.force.strategy = resume->state.governor.active;
    }

    System system = [&] {
      if (resume) return resume->checkpoint.system;
      LatticeSpec lattice;
      lattice.type = LatticeType::Bcc;
      lattice.a0 = units::kLatticeFe;
      lattice.nx = lattice.ny = lattice.nz = cells;
      return System::from_lattice(lattice, units::kMassFe);
    }();

    FinnisSinclair iron(FinnisSinclairParams::iron());
    Simulation sim(std::move(system), iron, config);

    GovernorConfig gov;
    gov.preferred = preferred;

    if (resume) {
      sim.set_current_step(resume->checkpoint.step);
      std::printf(
          "sdcmd-run: resumed at step %ld (discarded %d corrupt "
          "candidate(s), manifest_fallback=%d, sidecar=%s)\n",
          resume->checkpoint.step, resume->discarded,
          resume->manifest_fallback ? 1 : 0,
          resume->state_valid ? "ok" : "missing");
      if (resume->state_valid) {
        const RunState& state = resume->state;
        if (state.config_hash != 0 && state.config_hash != config_hash) {
          std::fprintf(stderr,
                       "sdcmd-run: config hash mismatch (run dir %016llx, "
                       "flags %016llx); refusing to resume different "
                       "physics\n",
                       static_cast<unsigned long long>(state.config_hash),
                       static_cast<unsigned long long>(config_hash));
          return exit_code::kError;
        }
        sim.set_dt(state.dt);
        sim.set_com_momentum_zeroed(state.momentum_zeroed);
        if (governed && state.has_governor) {
          sim.set_governor(gov, state.governor);
        } else if (governed) {
          sim.set_governor(gov);
        }
        // Continuity proof: the reloaded state must reproduce the energy
        // recorded when the checkpoint was written.
        sim.compute_forces();
        const double now = sim.sample().total_energy();
        const double ref = state.total_energy;
        const double rel =
            std::abs(now - ref) / std::max(1.0, std::abs(ref));
        std::printf(
            "sdcmd-run: resume energy continuity rel=%.3e (ref=%.12f, "
            "now=%.12f)\n",
            rel, ref, now);
        if (!(rel <= 1e-8)) {
          std::fprintf(stderr,
                       "sdcmd-run: energy discontinuity across resume "
                       "(rel=%.3e > 1e-8)\n",
                       rel);
          return exit_code::kError;
        }
      } else if (governed) {
        sim.set_governor(gov);
      }
    } else {
      sim.set_temperature(temp, seed);
      if (governed) sim.set_governor(gov);
    }

    obs::MetricsRegistry registry;
    std::optional<obs::StepMetricsWriter> jsonl;
    InstrumentationConfig inst;
    inst.registry = &registry;
    inst.profile_hw = cli.get_bool("hw-counters");
    if (!cli.get("jsonl").empty()) {
      jsonl.emplace(cli.get("jsonl"));
      inst.step_writer = &*jsonl;
    }
    sim.set_instrumentation(inst);

    SupervisorConfig sup;
    sup.checkpoint_every = cli.get_int("checkpoint-every");
    sup.max_wall_seconds = cli.get_double("max-wall");
    sup.watchdog_min_seconds = cli.get_double("watchdog-min");
    if (sup.watchdog_min_seconds <= 0.0) sup.watchdog_factor = 0.0;
    sup.config_hash = config_hash;
    sup.registry = &registry;
    // Every supervised run ends its JSONL stream with one cumulative
    // kind=summary record (flushed), whatever the outcome.
    sup.step_writer = jsonl ? &*jsonl : nullptr;

    const int disk_full_shots = cli.get_int("inject-disk-full");
    if (disk_full_shots > 0) {
      FaultSpec spec;
      spec.shots = disk_full_shots;
      spec.countdown = 1;  // let the initial resume-point write land first
      FaultInjector::instance().arm(faults::kDiskFull, spec);
    }
    if (cli.get_bool("inject-torn-manifest")) {
      FaultSpec spec;
      spec.countdown = 1;
      FaultInjector::instance().arm(faults::kManifestTornWrite, spec);
    }

    RunSupervisor supervisor(sim, dir, sup);

    const long thermo_every = cli.get_int("thermo-every");
    Simulation::Callback callback;
    if (thermo_every > 0) {
      callback = [thermo_every](const Simulation& s, long step) {
        if (step % thermo_every != 0) return;
        const ThermoSample t = s.sample();
        std::printf("  step %-8ld T %8.2f K  Etot %14.8f eV  strategy %s\n",
                    step, t.temperature, t.total_energy(),
                    s.has_governor()
                        ? to_string(s.governor()->active()).c_str()
                        : "fixed");
        std::fflush(stdout);
      };
    }

    if (sim.current_step() >= target) {
      std::printf("sdcmd-run: already at step %ld >= target %ld\n",
                  sim.current_step(), target);
      return exit_code::kCompleted;
    }

    const RunOutcome outcome = supervisor.run_to(target, callback);
    sim.compute_forces();
    std::printf(
        "sdcmd-run: outcome=%s step=%ld etot=%.12f checkpoints=%ld "
        "retries=%ld failures=%ld watchdog_trips=%ld interval=%ld\n",
        to_string(outcome).c_str(), sim.current_step(),
        sim.sample().total_energy(), supervisor.checkpoints_written(),
        supervisor.checkpoint_retries(), supervisor.checkpoint_failures(),
        supervisor.watchdog_trips(), supervisor.checkpoint_interval());
    switch (outcome) {
      case RunOutcome::Completed: return exit_code::kCompleted;
      case RunOutcome::SignalShutdown: return exit_code::kSignalShutdown;
      case RunOutcome::WallClockExpired: return exit_code::kWallClockExpired;
    }
    return exit_code::kError;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sdcmd-run: error: %s\n", e.what());
    return exit_code::kError;
  }
}
