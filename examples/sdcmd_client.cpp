// sdcmd-client: command-line client for the sdcmd-serve daemon.
//
// One invocation sends one protocol op and prints the response line, so
// shell scripts (and humans) can drive a session fleet:
//
//   sdcmd-client --op create --id s0 --cells 4 --temp 300
//   sdcmd-client --op step --id s0 --steps 500
//   sdcmd-client --op status --id s0
//   sdcmd-client --op snapshot --id s0 --out s0.xyz
//   sdcmd-client --op drain
//
// Connection failures are retried with exponential backoff (the daemon may
// be mid-restart); the retry contract is at-least-once — see
// src/serve/client.hpp. Exit codes: 0 ok response, 1 transport failure or
// bad usage, 2 daemon replied ok:false (the response still prints).

#include <fstream>
#include <iostream>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "serve/client.hpp"

using namespace sdcmd;

int main(int argc, char** argv) {
  CliParser cli("sdcmd-client", "CLI client for the sdcmd-serve daemon");
  cli.add_option("socket", "sdcmd.sock", "daemon socket path");
  cli.add_option("op", "ping",
                 "operation: ping|create|step|pause|steer|snapshot|status|"
                 "list|suspend|resume|destroy|metrics|drain");
  cli.add_option("id", "", "session id");
  cli.add_option("steps", "0", "steps to enqueue (op=step)");
  cli.add_option("cells", "0", "lattice cells per edge (op=create)");
  cli.add_option("temp", "-1", "temperature in K (create/steer)");
  cli.add_option("seed", "0", "velocity seed (op=create)");
  cli.add_option("dt-fs", "0", "timestep in fs (create/steer)");
  cli.add_option("tau-fs", "100", "thermostat coupling time (op=steer)");
  cli.add_option("threads", "0", "OpenMP team size per quantum (op=create)");
  cli.add_option("checkpoint-every", "0", "checkpoint cadence (op=create)");
  cli.add_option("out", "", "write the snapshot frame here as .xyz text");
  cli.add_option("timeout", "5.0", "per-request I/O deadline (s)");
  cli.add_option("retries", "5", "reconnect retry budget");
  if (!cli.parse(argc, argv)) return 1;

  serve::ClientConfig config;
  config.socket_path = cli.get("socket");
  config.io_timeout_s = cli.get_double("timeout");
  config.max_retries = cli.get_int("retries");

  serve::WireMessage request;
  const std::string op = cli.get("op");
  request.set("op", op);
  if (!cli.get("id").empty()) request.set("id", cli.get("id"));
  if (cli.get_int("steps") > 0) request.set("steps", cli.get_int("steps"));
  if (cli.get_int("cells") > 0) request.set("cells", cli.get_int("cells"));
  if (cli.get_double("temp") >= 0.0 || op == "steer") {
    // steer accepts temp<=0 as "remove the thermostat".
    if (cli.get("temp") != "-1") request.set("temp", cli.get_double("temp"));
  }
  if (cli.get_int("seed") > 0) request.set("seed", cli.get_int("seed"));
  if (cli.get_double("dt-fs") > 0.0) {
    request.set("dt_fs", cli.get_double("dt-fs"));
  }
  if (op == "steer") request.set("tau_fs", cli.get_double("tau-fs"));
  if (cli.get_int("threads") > 0) {
    request.set("threads", cli.get_int("threads"));
  }
  if (cli.get_int("checkpoint-every") > 0) {
    request.set("checkpoint_every", cli.get_int("checkpoint-every"));
  }

  try {
    serve::ServeClient client(config);
    serve::WireMessage response;
    std::vector<double> xyz;
    if (op == "snapshot") {
      const std::string id = cli.get("id");
      if (id.empty()) {
        std::cerr << "sdcmd-client: snapshot needs --id" << std::endl;
        return 1;
      }
      response = client.snapshot(id, xyz);
    } else {
      response = client.request(request);
    }
    std::cout << response.serialize() << std::endl;
    if (!xyz.empty() && !cli.get("out").empty()) {
      std::ofstream out(cli.get("out"));
      const std::size_t natoms = xyz.size() / 3;
      out << natoms << "\n"
          << "sdcmd snapshot step " << response.get_int("step", 0) << "\n";
      for (std::size_t i = 0; i < natoms; ++i) {
        out << "Fe " << xyz[3 * i] << ' ' << xyz[3 * i + 1] << ' '
            << xyz[3 * i + 2] << "\n";
      }
    }
    return response.get_bool("ok", false) ? 0 : 2;
  } catch (const Error& e) {
    std::cerr << "sdcmd-client: " << e.what() << std::endl;
    return 1;
  }
}
