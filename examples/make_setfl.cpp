// Tabulate an analytic EAM potential into a LAMMPS-compatible setfl file
// (and read it back to verify the round trip). Useful both as a tool and as
// a demonstration of the tabulation / file-IO layer.
//
//   ./make_setfl --out Fe.eam.alloy [--potential fs|johnson] [--nr 2000]
#include <cstdio>

#include "common/cli.hpp"
#include "potential/finnis_sinclair.hpp"
#include "potential/johnson.hpp"
#include "potential/setfl.hpp"

int main(int argc, char** argv) {
  using namespace sdcmd;

  CliParser cli("make_setfl", "export an analytic EAM potential as setfl");
  cli.add_option("out", "Fe.eam.alloy", "output path");
  cli.add_option("potential", "fs", "fs (Finnis-Sinclair Fe) or johnson (Cu)");
  cli.add_option("nr", "2000", "radial grid points");
  cli.add_option("nrho", "2000", "density grid points");
  cli.add_option("rho-max", "80", "embedding grid range");
  if (!cli.parse(argc, argv)) return 1;

  std::unique_ptr<EamPotential> pot;
  if (cli.get("potential") == "johnson") {
    pot = std::make_unique<JohnsonEam>(JohnsonParams::copper());
  } else {
    pot = std::make_unique<FinnisSinclair>(FinnisSinclairParams::iron());
  }

  const auto tab = TabulatedEam::from_analytic(
      *pot, static_cast<std::size_t>(cli.get_int("nr")),
      static_cast<std::size_t>(cli.get_int("nrho")),
      cli.get_double("rho-max"));

  EamTables tables = tab.tables();
  tables.label = cli.get("potential") == "johnson" ? "Cu" : "Fe";
  const std::string path = cli.get("out");
  write_setfl_file(path, tables,
                   "sdcmd export of " + pot->name() + " (eam/alloy)");
  std::printf("wrote %s (%zu radial, %zu density points, cutoff %.4f A)\n",
              path.c_str(), tables.pair.size(), tables.embed.size(),
              tables.cutoff);

  // Verify: parse it back and spot-check the pair function.
  const EamTables parsed = read_setfl_file(path);
  TabulatedEam reread(parsed);
  double worst = 0.0;
  for (double r = 1.5; r < reread.cutoff(); r += 0.01) {
    double va, da, vb, db;
    tab.pair(r, va, da);
    reread.pair(r, vb, db);
    worst = std::max(worst, std::abs(va - vb));
  }
  std::printf("round-trip max pair deviation: %.3e eV\n", worst);
  return worst < 1e-8 ? 0 : 1;
}
