// Thermal expansion of bcc iron: NPT runs (Berendsen thermostat +
// barostat at zero pressure) over a temperature ladder, reporting the
// equilibrium lattice constant per temperature. The slope is the linear
// thermal expansion - a classic validation workload exercising the
// thermostat, barostat, SDC forces and long runs with many rebuilds.
//
//   ./thermal_expansion [--cells 5] [--temps 100,300,600] [--steps 400]
#include <cstdio>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "md/simulation.hpp"
#include "potential/finnis_sinclair.hpp"

int main(int argc, char** argv) {
  using namespace sdcmd;

  CliParser cli("thermal_expansion",
                "lattice constant vs temperature under NPT");
  cli.add_option("cells", "5", "bcc cells per box edge");
  cli.add_option("temps", "100,300,600", "temperature ladder (K)");
  cli.add_option("steps", "400", "NPT steps per temperature");
  cli.add_option("strategy", "sdc", "reduction strategy");
  if (!cli.parse(argc, argv)) return 1;

  FinnisSinclair iron(FinnisSinclairParams::iron());
  const int cells = cli.get_int("cells");
  const long steps = cli.get_int("steps");

  AsciiTable table({"T (K)", "a (A)", "a/a0", "P residue (eV/A^3)"});
  double previous_a = 0.0;

  for (int temperature : cli.get_int_list("temps")) {
    LatticeSpec lattice;
    lattice.type = LatticeType::Bcc;
    lattice.a0 = units::kLatticeFe;
    lattice.nx = lattice.ny = lattice.nz = cells;

    SimulationConfig config;
    config.dt = units::fs_to_internal(1.0);
    config.force.strategy = parse_strategy(cli.get("strategy"));
    if (config.force.strategy == ReductionStrategy::Sdc) {
      const int dims = SpatialDecomposition::max_feasible_dimensionality(
          lattice.box(), iron.cutoff() + config.skin);
      if (dims == 0) {
        config.force.strategy = ReductionStrategy::Serial;
      } else {
        config.force.sdc.dimensionality = dims;
      }
    }

    Simulation sim(System::from_lattice(lattice, units::kMassFe), iron,
                   config);
    sim.set_temperature(temperature, 1000 + temperature);
    sim.set_thermostat(std::make_unique<BerendsenThermostat>(
        static_cast<double>(temperature), 0.05));
    sim.set_barostat(BerendsenBarostat(0.0, 0.5, 0.02), 5);

    // Equilibrate, then average the box edge over the tail.
    sim.run(steps / 2);
    RunningStats edge, pressure;
    sim.run(steps - steps / 2, [&](const Simulation& s, long) {
      edge.add(s.system().box().length(0));
      pressure.add(s.sample().pressure);
    }, 10);

    const double a = edge.mean() / cells;
    table.add_row({std::to_string(temperature), AsciiTable::fmt(a, 5),
                   AsciiTable::fmt(a / units::kLatticeFe, 5),
                   AsciiTable::fmt(pressure.mean(), 5)});
    if (previous_a > 0.0 && a < previous_a) {
      std::printf("note: a(%d K) < a(previous): thermal noise exceeds the "
                  "expansion at this system size\n",
                  temperature);
    }
    previous_a = a;
  }

  std::printf("%s", table.render().c_str());
  std::printf(
      "\nexpected shape: a grows with T (positive thermal expansion);\n"
      "experimental bcc Fe: a(300 K)/a(0 K) - 1 is ~0.3%%.\n");
  return 0;
}
