// NPT relaxation with checkpoint/restart: stretch a bcc iron box, relax it
// to zero pressure with the Berendsen barostat, checkpoint mid-run, restart
// from the file, and verify the continuation reaches the same final box.
//
//   ./npt_relaxation [--cells 5] [--prestrain 0.02] [--steps 200]
#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "common/units.hpp"
#include "io/checkpoint.hpp"
#include "md/simulation.hpp"
#include "potential/finnis_sinclair.hpp"

namespace {

using namespace sdcmd;

SimulationConfig make_config(const Box& box, const EamPotential& pot) {
  SimulationConfig config;
  config.dt = units::fs_to_internal(1.0);
  config.force.strategy = ReductionStrategy::Sdc;
  const int dims = SpatialDecomposition::max_feasible_dimensionality(
      box, pot.cutoff() + config.skin);
  if (dims == 0) {
    config.force.strategy = ReductionStrategy::Serial;
  } else {
    config.force.sdc.dimensionality = dims;
  }
  return config;
}

void attach_npt(Simulation& sim, double temperature) {
  sim.set_thermostat(
      std::make_unique<BerendsenThermostat>(temperature, 0.05));
  sim.set_barostat(BerendsenBarostat(0.0, 0.5, 0.02), /*every=*/5);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("npt_relaxation",
                "zero-pressure relaxation of a pre-strained Fe box, with a "
                "checkpoint/restart round trip");
  cli.add_option("cells", "5", "bcc cells per box edge");
  cli.add_option("prestrain", "0.02", "initial isotropic strain");
  cli.add_option("steps", "200", "NPT steps (split across the restart)");
  cli.add_option("temperature", "50", "thermostat target (K)");
  cli.add_option("checkpoint", "npt_relaxation.chk", "checkpoint path");
  if (!cli.parse(argc, argv)) return 1;

  const double temperature = cli.get_double("temperature");
  const long steps = cli.get_int("steps");

  LatticeSpec lattice;
  lattice.type = LatticeType::Bcc;
  lattice.a0 = units::kLatticeFe * (1.0 + cli.get_double("prestrain"));
  lattice.nx = lattice.ny = lattice.nz = cli.get_int("cells");

  FinnisSinclair iron(FinnisSinclairParams::iron());
  System initial = System::from_lattice(lattice, units::kMassFe);
  std::printf("start: box edge %.4f A (equilibrium would be %.4f A)\n",
              initial.box().length(0),
              units::kLatticeFe * cli.get_int("cells"));

  // Leg 1: run half the steps, checkpoint, note the state.
  Simulation sim(std::move(initial), iron,
                 make_config(lattice.box(), iron));
  sim.set_temperature(temperature, 99);
  attach_npt(sim, temperature);
  sim.run(steps / 2);
  const std::string path = cli.get("checkpoint");
  save_checkpoint_file(path, sim.system(), sim.current_step());
  std::printf("checkpointed at step %ld: box %.4f A, P %.5f eV/A^3\n",
              sim.current_step(), sim.system().box().length(0),
              sim.sample().pressure);

  // Leg 2a: continue the original simulation.
  sim.run(steps - steps / 2);
  const double box_direct = sim.system().box().length(0);

  // Leg 2b: restart from the checkpoint and run the same remainder.
  Checkpoint restored = load_checkpoint_file(path);
  Simulation resumed(std::move(restored.system), iron,
                     make_config(sim.system().box(), iron));
  attach_npt(resumed, temperature);
  resumed.run(steps - steps / 2);
  const double box_restarted = resumed.system().box().length(0);

  std::printf(
      "final box edge: direct %.4f A, restarted %.4f A (diff %.2e A)\n",
      box_direct, box_restarted, std::abs(box_direct - box_restarted));
  std::printf("final pressure (restarted run): %.6f eV/A^3\n",
              resumed.sample().pressure);
  std::remove(path.c_str());

  // The two runs share positions/velocities at the checkpoint; thermostat
  // and barostat are deterministic, so the boxes should track closely.
  return std::abs(box_direct - box_restarted) < 0.05 ? 0 : 1;
}
