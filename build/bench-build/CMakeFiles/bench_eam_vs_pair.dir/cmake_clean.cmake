file(REMOVE_RECURSE
  "../bench/bench_eam_vs_pair"
  "../bench/bench_eam_vs_pair.pdb"
  "CMakeFiles/bench_eam_vs_pair.dir/bench_eam_vs_pair.cpp.o"
  "CMakeFiles/bench_eam_vs_pair.dir/bench_eam_vs_pair.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eam_vs_pair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
