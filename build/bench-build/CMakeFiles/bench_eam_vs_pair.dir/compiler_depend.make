# Empty compiler generated dependencies file for bench_eam_vs_pair.
# This may be replaced when dependencies are built.
