# Empty compiler generated dependencies file for bench_reorder.
# This may be replaced when dependencies are built.
