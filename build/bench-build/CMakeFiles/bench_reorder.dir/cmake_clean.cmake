file(REMOVE_RECURSE
  "../bench/bench_reorder"
  "../bench/bench_reorder.pdb"
  "CMakeFiles/bench_reorder.dir/bench_reorder.cpp.o"
  "CMakeFiles/bench_reorder.dir/bench_reorder.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
