file(REMOVE_RECURSE
  "../bench/bench_neighbor_policy"
  "../bench/bench_neighbor_policy.pdb"
  "CMakeFiles/bench_neighbor_policy.dir/bench_neighbor_policy.cpp.o"
  "CMakeFiles/bench_neighbor_policy.dir/bench_neighbor_policy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_neighbor_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
