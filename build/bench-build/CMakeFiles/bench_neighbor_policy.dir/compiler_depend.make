# Empty compiler generated dependencies file for bench_neighbor_policy.
# This may be replaced when dependencies are built.
