file(REMOVE_RECURSE
  "../bench/bench_table1_sdc"
  "../bench/bench_table1_sdc.pdb"
  "CMakeFiles/bench_table1_sdc.dir/bench_table1_sdc.cpp.o"
  "CMakeFiles/bench_table1_sdc.dir/bench_table1_sdc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_sdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
