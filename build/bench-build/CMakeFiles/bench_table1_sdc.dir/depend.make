# Empty dependencies file for bench_table1_sdc.
# This may be replaced when dependencies are built.
