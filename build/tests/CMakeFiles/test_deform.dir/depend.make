# Empty dependencies file for test_deform.
# This may be replaced when dependencies are built.
