file(REMOVE_RECURSE
  "CMakeFiles/test_deform.dir/test_deform.cpp.o"
  "CMakeFiles/test_deform.dir/test_deform.cpp.o.d"
  "test_deform"
  "test_deform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
