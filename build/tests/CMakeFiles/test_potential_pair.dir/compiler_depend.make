# Empty compiler generated dependencies file for test_potential_pair.
# This may be replaced when dependencies are built.
