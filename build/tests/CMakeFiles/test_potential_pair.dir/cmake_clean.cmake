file(REMOVE_RECURSE
  "CMakeFiles/test_potential_pair.dir/test_potential_pair.cpp.o"
  "CMakeFiles/test_potential_pair.dir/test_potential_pair.cpp.o.d"
  "test_potential_pair"
  "test_potential_pair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_potential_pair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
