# Empty dependencies file for test_tabulated.
# This may be replaced when dependencies are built.
