file(REMOVE_RECURSE
  "CMakeFiles/test_tabulated.dir/test_tabulated.cpp.o"
  "CMakeFiles/test_tabulated.dir/test_tabulated.cpp.o.d"
  "test_tabulated"
  "test_tabulated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tabulated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
