# Empty dependencies file for test_pair_simulation.
# This may be replaced when dependencies are built.
