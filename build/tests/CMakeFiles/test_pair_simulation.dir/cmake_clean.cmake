file(REMOVE_RECURSE
  "CMakeFiles/test_pair_simulation.dir/test_pair_simulation.cpp.o"
  "CMakeFiles/test_pair_simulation.dir/test_pair_simulation.cpp.o.d"
  "test_pair_simulation"
  "test_pair_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pair_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
