file(REMOVE_RECURSE
  "CMakeFiles/test_colored_reduction.dir/test_colored_reduction.cpp.o"
  "CMakeFiles/test_colored_reduction.dir/test_colored_reduction.cpp.o.d"
  "test_colored_reduction"
  "test_colored_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_colored_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
