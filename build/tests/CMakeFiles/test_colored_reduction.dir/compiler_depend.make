# Empty compiler generated dependencies file for test_colored_reduction.
# This may be replaced when dependencies are built.
