# Empty compiler generated dependencies file for test_pair_force.
# This may be replaced when dependencies are built.
