file(REMOVE_RECURSE
  "CMakeFiles/test_pair_force.dir/test_pair_force.cpp.o"
  "CMakeFiles/test_pair_force.dir/test_pair_force.cpp.o.d"
  "test_pair_force"
  "test_pair_force.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pair_force.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
