# Empty dependencies file for test_thermostat.
# This may be replaced when dependencies are built.
