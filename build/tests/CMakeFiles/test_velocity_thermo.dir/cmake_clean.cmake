file(REMOVE_RECURSE
  "CMakeFiles/test_velocity_thermo.dir/test_velocity_thermo.cpp.o"
  "CMakeFiles/test_velocity_thermo.dir/test_velocity_thermo.cpp.o.d"
  "test_velocity_thermo"
  "test_velocity_thermo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_velocity_thermo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
