# Empty dependencies file for test_velocity_thermo.
# This may be replaced when dependencies are built.
