file(REMOVE_RECURSE
  "CMakeFiles/test_cna_vacf.dir/test_cna_vacf.cpp.o"
  "CMakeFiles/test_cna_vacf.dir/test_cna_vacf.cpp.o.d"
  "test_cna_vacf"
  "test_cna_vacf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cna_vacf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
