# Empty compiler generated dependencies file for test_cna_vacf.
# This may be replaced when dependencies are built.
