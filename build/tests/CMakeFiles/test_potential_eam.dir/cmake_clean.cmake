file(REMOVE_RECURSE
  "CMakeFiles/test_potential_eam.dir/test_potential_eam.cpp.o"
  "CMakeFiles/test_potential_eam.dir/test_potential_eam.cpp.o.d"
  "test_potential_eam"
  "test_potential_eam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_potential_eam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
