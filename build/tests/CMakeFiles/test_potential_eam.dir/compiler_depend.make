# Empty compiler generated dependencies file for test_potential_eam.
# This may be replaced when dependencies are built.
