# Empty compiler generated dependencies file for test_eam_force.
# This may be replaced when dependencies are built.
