file(REMOVE_RECURSE
  "CMakeFiles/test_eam_force.dir/test_eam_force.cpp.o"
  "CMakeFiles/test_eam_force.dir/test_eam_force.cpp.o.d"
  "test_eam_force"
  "test_eam_force.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eam_force.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
