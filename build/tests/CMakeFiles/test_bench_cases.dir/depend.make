# Empty dependencies file for test_bench_cases.
# This may be replaced when dependencies are built.
