file(REMOVE_RECURSE
  "CMakeFiles/test_bench_cases.dir/test_bench_cases.cpp.o"
  "CMakeFiles/test_bench_cases.dir/test_bench_cases.cpp.o.d"
  "test_bench_cases"
  "test_bench_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bench_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
