# Empty dependencies file for test_sdc_schedule.
# This may be replaced when dependencies are built.
