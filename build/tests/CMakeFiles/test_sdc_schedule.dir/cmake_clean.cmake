file(REMOVE_RECURSE
  "CMakeFiles/test_sdc_schedule.dir/test_sdc_schedule.cpp.o"
  "CMakeFiles/test_sdc_schedule.dir/test_sdc_schedule.cpp.o.d"
  "test_sdc_schedule"
  "test_sdc_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sdc_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
