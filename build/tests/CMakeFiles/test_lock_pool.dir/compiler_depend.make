# Empty compiler generated dependencies file for test_lock_pool.
# This may be replaced when dependencies are built.
