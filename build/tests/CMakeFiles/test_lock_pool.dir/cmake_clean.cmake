file(REMOVE_RECURSE
  "CMakeFiles/test_lock_pool.dir/test_lock_pool.cpp.o"
  "CMakeFiles/test_lock_pool.dir/test_lock_pool.cpp.o.d"
  "test_lock_pool"
  "test_lock_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lock_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
