# Empty dependencies file for test_setfl.
# This may be replaced when dependencies are built.
