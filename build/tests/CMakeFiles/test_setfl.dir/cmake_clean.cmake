file(REMOVE_RECURSE
  "CMakeFiles/test_setfl.dir/test_setfl.cpp.o"
  "CMakeFiles/test_setfl.dir/test_setfl.cpp.o.d"
  "test_setfl"
  "test_setfl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_setfl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
