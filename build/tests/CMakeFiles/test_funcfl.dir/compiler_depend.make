# Empty compiler generated dependencies file for test_funcfl.
# This may be replaced when dependencies are built.
