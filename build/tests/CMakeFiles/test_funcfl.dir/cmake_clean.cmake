file(REMOVE_RECURSE
  "CMakeFiles/test_funcfl.dir/test_funcfl.cpp.o"
  "CMakeFiles/test_funcfl.dir/test_funcfl.cpp.o.d"
  "test_funcfl"
  "test_funcfl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_funcfl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
