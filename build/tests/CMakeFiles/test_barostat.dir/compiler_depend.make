# Empty compiler generated dependencies file for test_barostat.
# This may be replaced when dependencies are built.
