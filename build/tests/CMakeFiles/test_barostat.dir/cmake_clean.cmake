file(REMOVE_RECURSE
  "CMakeFiles/test_barostat.dir/test_barostat.cpp.o"
  "CMakeFiles/test_barostat.dir/test_barostat.cpp.o.d"
  "test_barostat"
  "test_barostat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_barostat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
