file(REMOVE_RECURSE
  "CMakeFiles/test_race_check.dir/test_race_check.cpp.o"
  "CMakeFiles/test_race_check.dir/test_race_check.cpp.o.d"
  "test_race_check"
  "test_race_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_race_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
