# Empty dependencies file for test_misc_md.
# This may be replaced when dependencies are built.
