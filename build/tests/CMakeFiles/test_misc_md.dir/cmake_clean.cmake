file(REMOVE_RECURSE
  "CMakeFiles/test_misc_md.dir/test_misc_md.cpp.o"
  "CMakeFiles/test_misc_md.dir/test_misc_md.cpp.o.d"
  "test_misc_md"
  "test_misc_md.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_misc_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
