# Empty compiler generated dependencies file for test_cell_direct_defects.
# This may be replaced when dependencies are built.
