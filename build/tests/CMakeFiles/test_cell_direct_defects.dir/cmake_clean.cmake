file(REMOVE_RECURSE
  "CMakeFiles/test_cell_direct_defects.dir/test_cell_direct_defects.cpp.o"
  "CMakeFiles/test_cell_direct_defects.dir/test_cell_direct_defects.cpp.o.d"
  "test_cell_direct_defects"
  "test_cell_direct_defects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cell_direct_defects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
