
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/cna.cpp" "src/analysis/CMakeFiles/sdcmd_analysis.dir/cna.cpp.o" "gcc" "src/analysis/CMakeFiles/sdcmd_analysis.dir/cna.cpp.o.d"
  "/root/repo/src/analysis/coordination.cpp" "src/analysis/CMakeFiles/sdcmd_analysis.dir/coordination.cpp.o" "gcc" "src/analysis/CMakeFiles/sdcmd_analysis.dir/coordination.cpp.o.d"
  "/root/repo/src/analysis/msd.cpp" "src/analysis/CMakeFiles/sdcmd_analysis.dir/msd.cpp.o" "gcc" "src/analysis/CMakeFiles/sdcmd_analysis.dir/msd.cpp.o.d"
  "/root/repo/src/analysis/rdf.cpp" "src/analysis/CMakeFiles/sdcmd_analysis.dir/rdf.cpp.o" "gcc" "src/analysis/CMakeFiles/sdcmd_analysis.dir/rdf.cpp.o.d"
  "/root/repo/src/analysis/stress.cpp" "src/analysis/CMakeFiles/sdcmd_analysis.dir/stress.cpp.o" "gcc" "src/analysis/CMakeFiles/sdcmd_analysis.dir/stress.cpp.o.d"
  "/root/repo/src/analysis/vacf.cpp" "src/analysis/CMakeFiles/sdcmd_analysis.dir/vacf.cpp.o" "gcc" "src/analysis/CMakeFiles/sdcmd_analysis.dir/vacf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sdcmd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/sdcmd_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/neighbor/CMakeFiles/sdcmd_neighbor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sdcmd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/md/CMakeFiles/sdcmd_md.dir/DependInfo.cmake"
  "/root/repo/build/src/domain/CMakeFiles/sdcmd_domain.dir/DependInfo.cmake"
  "/root/repo/build/src/potential/CMakeFiles/sdcmd_potential.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
