file(REMOVE_RECURSE
  "CMakeFiles/sdcmd_analysis.dir/cna.cpp.o"
  "CMakeFiles/sdcmd_analysis.dir/cna.cpp.o.d"
  "CMakeFiles/sdcmd_analysis.dir/coordination.cpp.o"
  "CMakeFiles/sdcmd_analysis.dir/coordination.cpp.o.d"
  "CMakeFiles/sdcmd_analysis.dir/msd.cpp.o"
  "CMakeFiles/sdcmd_analysis.dir/msd.cpp.o.d"
  "CMakeFiles/sdcmd_analysis.dir/rdf.cpp.o"
  "CMakeFiles/sdcmd_analysis.dir/rdf.cpp.o.d"
  "CMakeFiles/sdcmd_analysis.dir/stress.cpp.o"
  "CMakeFiles/sdcmd_analysis.dir/stress.cpp.o.d"
  "CMakeFiles/sdcmd_analysis.dir/vacf.cpp.o"
  "CMakeFiles/sdcmd_analysis.dir/vacf.cpp.o.d"
  "libsdcmd_analysis.a"
  "libsdcmd_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdcmd_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
