file(REMOVE_RECURSE
  "libsdcmd_analysis.a"
)
