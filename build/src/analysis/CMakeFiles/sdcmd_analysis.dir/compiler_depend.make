# Empty compiler generated dependencies file for sdcmd_analysis.
# This may be replaced when dependencies are built.
