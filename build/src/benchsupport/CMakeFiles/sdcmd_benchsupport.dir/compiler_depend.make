# Empty compiler generated dependencies file for sdcmd_benchsupport.
# This may be replaced when dependencies are built.
