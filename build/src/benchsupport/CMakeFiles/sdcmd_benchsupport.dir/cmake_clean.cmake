file(REMOVE_RECURSE
  "CMakeFiles/sdcmd_benchsupport.dir/cases.cpp.o"
  "CMakeFiles/sdcmd_benchsupport.dir/cases.cpp.o.d"
  "CMakeFiles/sdcmd_benchsupport.dir/sweep.cpp.o"
  "CMakeFiles/sdcmd_benchsupport.dir/sweep.cpp.o.d"
  "libsdcmd_benchsupport.a"
  "libsdcmd_benchsupport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdcmd_benchsupport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
