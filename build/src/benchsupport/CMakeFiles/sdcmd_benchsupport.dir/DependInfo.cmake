
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchsupport/cases.cpp" "src/benchsupport/CMakeFiles/sdcmd_benchsupport.dir/cases.cpp.o" "gcc" "src/benchsupport/CMakeFiles/sdcmd_benchsupport.dir/cases.cpp.o.d"
  "/root/repo/src/benchsupport/sweep.cpp" "src/benchsupport/CMakeFiles/sdcmd_benchsupport.dir/sweep.cpp.o" "gcc" "src/benchsupport/CMakeFiles/sdcmd_benchsupport.dir/sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/md/CMakeFiles/sdcmd_md.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sdcmd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/potential/CMakeFiles/sdcmd_potential.dir/DependInfo.cmake"
  "/root/repo/build/src/neighbor/CMakeFiles/sdcmd_neighbor.dir/DependInfo.cmake"
  "/root/repo/build/src/domain/CMakeFiles/sdcmd_domain.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/sdcmd_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sdcmd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
