file(REMOVE_RECURSE
  "libsdcmd_benchsupport.a"
)
