file(REMOVE_RECURSE
  "libsdcmd_geom.a"
)
