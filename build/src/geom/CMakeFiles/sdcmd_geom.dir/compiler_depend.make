# Empty compiler generated dependencies file for sdcmd_geom.
# This may be replaced when dependencies are built.
