
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/box.cpp" "src/geom/CMakeFiles/sdcmd_geom.dir/box.cpp.o" "gcc" "src/geom/CMakeFiles/sdcmd_geom.dir/box.cpp.o.d"
  "/root/repo/src/geom/defects.cpp" "src/geom/CMakeFiles/sdcmd_geom.dir/defects.cpp.o" "gcc" "src/geom/CMakeFiles/sdcmd_geom.dir/defects.cpp.o.d"
  "/root/repo/src/geom/lattice.cpp" "src/geom/CMakeFiles/sdcmd_geom.dir/lattice.cpp.o" "gcc" "src/geom/CMakeFiles/sdcmd_geom.dir/lattice.cpp.o.d"
  "/root/repo/src/geom/region.cpp" "src/geom/CMakeFiles/sdcmd_geom.dir/region.cpp.o" "gcc" "src/geom/CMakeFiles/sdcmd_geom.dir/region.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sdcmd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
