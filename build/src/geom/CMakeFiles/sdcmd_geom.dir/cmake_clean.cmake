file(REMOVE_RECURSE
  "CMakeFiles/sdcmd_geom.dir/box.cpp.o"
  "CMakeFiles/sdcmd_geom.dir/box.cpp.o.d"
  "CMakeFiles/sdcmd_geom.dir/defects.cpp.o"
  "CMakeFiles/sdcmd_geom.dir/defects.cpp.o.d"
  "CMakeFiles/sdcmd_geom.dir/lattice.cpp.o"
  "CMakeFiles/sdcmd_geom.dir/lattice.cpp.o.d"
  "CMakeFiles/sdcmd_geom.dir/region.cpp.o"
  "CMakeFiles/sdcmd_geom.dir/region.cpp.o.d"
  "libsdcmd_geom.a"
  "libsdcmd_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdcmd_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
