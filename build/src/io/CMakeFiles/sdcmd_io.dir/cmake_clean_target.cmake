file(REMOVE_RECURSE
  "libsdcmd_io.a"
)
