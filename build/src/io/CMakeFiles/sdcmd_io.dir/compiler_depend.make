# Empty compiler generated dependencies file for sdcmd_io.
# This may be replaced when dependencies are built.
