file(REMOVE_RECURSE
  "CMakeFiles/sdcmd_io.dir/checkpoint.cpp.o"
  "CMakeFiles/sdcmd_io.dir/checkpoint.cpp.o.d"
  "CMakeFiles/sdcmd_io.dir/lammps_data.cpp.o"
  "CMakeFiles/sdcmd_io.dir/lammps_data.cpp.o.d"
  "CMakeFiles/sdcmd_io.dir/xyz_reader.cpp.o"
  "CMakeFiles/sdcmd_io.dir/xyz_reader.cpp.o.d"
  "libsdcmd_io.a"
  "libsdcmd_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdcmd_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
