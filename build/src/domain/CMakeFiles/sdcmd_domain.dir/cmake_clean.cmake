file(REMOVE_RECURSE
  "CMakeFiles/sdcmd_domain.dir/coloring.cpp.o"
  "CMakeFiles/sdcmd_domain.dir/coloring.cpp.o.d"
  "CMakeFiles/sdcmd_domain.dir/decomposition.cpp.o"
  "CMakeFiles/sdcmd_domain.dir/decomposition.cpp.o.d"
  "CMakeFiles/sdcmd_domain.dir/partition.cpp.o"
  "CMakeFiles/sdcmd_domain.dir/partition.cpp.o.d"
  "libsdcmd_domain.a"
  "libsdcmd_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdcmd_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
