# Empty dependencies file for sdcmd_domain.
# This may be replaced when dependencies are built.
