
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/domain/coloring.cpp" "src/domain/CMakeFiles/sdcmd_domain.dir/coloring.cpp.o" "gcc" "src/domain/CMakeFiles/sdcmd_domain.dir/coloring.cpp.o.d"
  "/root/repo/src/domain/decomposition.cpp" "src/domain/CMakeFiles/sdcmd_domain.dir/decomposition.cpp.o" "gcc" "src/domain/CMakeFiles/sdcmd_domain.dir/decomposition.cpp.o.d"
  "/root/repo/src/domain/partition.cpp" "src/domain/CMakeFiles/sdcmd_domain.dir/partition.cpp.o" "gcc" "src/domain/CMakeFiles/sdcmd_domain.dir/partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sdcmd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/sdcmd_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
