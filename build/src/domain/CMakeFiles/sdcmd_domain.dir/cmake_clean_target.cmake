file(REMOVE_RECURSE
  "libsdcmd_domain.a"
)
