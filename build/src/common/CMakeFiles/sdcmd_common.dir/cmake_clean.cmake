file(REMOVE_RECURSE
  "CMakeFiles/sdcmd_common.dir/cli.cpp.o"
  "CMakeFiles/sdcmd_common.dir/cli.cpp.o.d"
  "CMakeFiles/sdcmd_common.dir/csv.cpp.o"
  "CMakeFiles/sdcmd_common.dir/csv.cpp.o.d"
  "CMakeFiles/sdcmd_common.dir/log.cpp.o"
  "CMakeFiles/sdcmd_common.dir/log.cpp.o.d"
  "CMakeFiles/sdcmd_common.dir/random.cpp.o"
  "CMakeFiles/sdcmd_common.dir/random.cpp.o.d"
  "CMakeFiles/sdcmd_common.dir/stats.cpp.o"
  "CMakeFiles/sdcmd_common.dir/stats.cpp.o.d"
  "CMakeFiles/sdcmd_common.dir/table.cpp.o"
  "CMakeFiles/sdcmd_common.dir/table.cpp.o.d"
  "CMakeFiles/sdcmd_common.dir/threads.cpp.o"
  "CMakeFiles/sdcmd_common.dir/threads.cpp.o.d"
  "CMakeFiles/sdcmd_common.dir/timer.cpp.o"
  "CMakeFiles/sdcmd_common.dir/timer.cpp.o.d"
  "libsdcmd_common.a"
  "libsdcmd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdcmd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
