# Empty dependencies file for sdcmd_common.
# This may be replaced when dependencies are built.
