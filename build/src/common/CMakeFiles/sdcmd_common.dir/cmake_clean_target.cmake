file(REMOVE_RECURSE
  "libsdcmd_common.a"
)
