
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/md/atoms.cpp" "src/md/CMakeFiles/sdcmd_md.dir/atoms.cpp.o" "gcc" "src/md/CMakeFiles/sdcmd_md.dir/atoms.cpp.o.d"
  "/root/repo/src/md/barostat.cpp" "src/md/CMakeFiles/sdcmd_md.dir/barostat.cpp.o" "gcc" "src/md/CMakeFiles/sdcmd_md.dir/barostat.cpp.o.d"
  "/root/repo/src/md/deform.cpp" "src/md/CMakeFiles/sdcmd_md.dir/deform.cpp.o" "gcc" "src/md/CMakeFiles/sdcmd_md.dir/deform.cpp.o.d"
  "/root/repo/src/md/dump.cpp" "src/md/CMakeFiles/sdcmd_md.dir/dump.cpp.o" "gcc" "src/md/CMakeFiles/sdcmd_md.dir/dump.cpp.o.d"
  "/root/repo/src/md/force_provider.cpp" "src/md/CMakeFiles/sdcmd_md.dir/force_provider.cpp.o" "gcc" "src/md/CMakeFiles/sdcmd_md.dir/force_provider.cpp.o.d"
  "/root/repo/src/md/integrator.cpp" "src/md/CMakeFiles/sdcmd_md.dir/integrator.cpp.o" "gcc" "src/md/CMakeFiles/sdcmd_md.dir/integrator.cpp.o.d"
  "/root/repo/src/md/simulation.cpp" "src/md/CMakeFiles/sdcmd_md.dir/simulation.cpp.o" "gcc" "src/md/CMakeFiles/sdcmd_md.dir/simulation.cpp.o.d"
  "/root/repo/src/md/system.cpp" "src/md/CMakeFiles/sdcmd_md.dir/system.cpp.o" "gcc" "src/md/CMakeFiles/sdcmd_md.dir/system.cpp.o.d"
  "/root/repo/src/md/thermo.cpp" "src/md/CMakeFiles/sdcmd_md.dir/thermo.cpp.o" "gcc" "src/md/CMakeFiles/sdcmd_md.dir/thermo.cpp.o.d"
  "/root/repo/src/md/thermo_log.cpp" "src/md/CMakeFiles/sdcmd_md.dir/thermo_log.cpp.o" "gcc" "src/md/CMakeFiles/sdcmd_md.dir/thermo_log.cpp.o.d"
  "/root/repo/src/md/thermostat.cpp" "src/md/CMakeFiles/sdcmd_md.dir/thermostat.cpp.o" "gcc" "src/md/CMakeFiles/sdcmd_md.dir/thermostat.cpp.o.d"
  "/root/repo/src/md/velocity.cpp" "src/md/CMakeFiles/sdcmd_md.dir/velocity.cpp.o" "gcc" "src/md/CMakeFiles/sdcmd_md.dir/velocity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sdcmd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/sdcmd_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/potential/CMakeFiles/sdcmd_potential.dir/DependInfo.cmake"
  "/root/repo/build/src/neighbor/CMakeFiles/sdcmd_neighbor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sdcmd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/domain/CMakeFiles/sdcmd_domain.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
