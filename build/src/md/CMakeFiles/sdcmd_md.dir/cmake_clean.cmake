file(REMOVE_RECURSE
  "CMakeFiles/sdcmd_md.dir/atoms.cpp.o"
  "CMakeFiles/sdcmd_md.dir/atoms.cpp.o.d"
  "CMakeFiles/sdcmd_md.dir/barostat.cpp.o"
  "CMakeFiles/sdcmd_md.dir/barostat.cpp.o.d"
  "CMakeFiles/sdcmd_md.dir/deform.cpp.o"
  "CMakeFiles/sdcmd_md.dir/deform.cpp.o.d"
  "CMakeFiles/sdcmd_md.dir/dump.cpp.o"
  "CMakeFiles/sdcmd_md.dir/dump.cpp.o.d"
  "CMakeFiles/sdcmd_md.dir/force_provider.cpp.o"
  "CMakeFiles/sdcmd_md.dir/force_provider.cpp.o.d"
  "CMakeFiles/sdcmd_md.dir/integrator.cpp.o"
  "CMakeFiles/sdcmd_md.dir/integrator.cpp.o.d"
  "CMakeFiles/sdcmd_md.dir/simulation.cpp.o"
  "CMakeFiles/sdcmd_md.dir/simulation.cpp.o.d"
  "CMakeFiles/sdcmd_md.dir/system.cpp.o"
  "CMakeFiles/sdcmd_md.dir/system.cpp.o.d"
  "CMakeFiles/sdcmd_md.dir/thermo.cpp.o"
  "CMakeFiles/sdcmd_md.dir/thermo.cpp.o.d"
  "CMakeFiles/sdcmd_md.dir/thermo_log.cpp.o"
  "CMakeFiles/sdcmd_md.dir/thermo_log.cpp.o.d"
  "CMakeFiles/sdcmd_md.dir/thermostat.cpp.o"
  "CMakeFiles/sdcmd_md.dir/thermostat.cpp.o.d"
  "CMakeFiles/sdcmd_md.dir/velocity.cpp.o"
  "CMakeFiles/sdcmd_md.dir/velocity.cpp.o.d"
  "libsdcmd_md.a"
  "libsdcmd_md.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdcmd_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
