file(REMOVE_RECURSE
  "libsdcmd_md.a"
)
