# Empty compiler generated dependencies file for sdcmd_md.
# This may be replaced when dependencies are built.
