# Empty dependencies file for sdcmd_neighbor.
# This may be replaced when dependencies are built.
