file(REMOVE_RECURSE
  "libsdcmd_neighbor.a"
)
