file(REMOVE_RECURSE
  "CMakeFiles/sdcmd_neighbor.dir/cell_list.cpp.o"
  "CMakeFiles/sdcmd_neighbor.dir/cell_list.cpp.o.d"
  "CMakeFiles/sdcmd_neighbor.dir/neighbor_list.cpp.o"
  "CMakeFiles/sdcmd_neighbor.dir/neighbor_list.cpp.o.d"
  "CMakeFiles/sdcmd_neighbor.dir/reorder.cpp.o"
  "CMakeFiles/sdcmd_neighbor.dir/reorder.cpp.o.d"
  "libsdcmd_neighbor.a"
  "libsdcmd_neighbor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdcmd_neighbor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
