
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/neighbor/cell_list.cpp" "src/neighbor/CMakeFiles/sdcmd_neighbor.dir/cell_list.cpp.o" "gcc" "src/neighbor/CMakeFiles/sdcmd_neighbor.dir/cell_list.cpp.o.d"
  "/root/repo/src/neighbor/neighbor_list.cpp" "src/neighbor/CMakeFiles/sdcmd_neighbor.dir/neighbor_list.cpp.o" "gcc" "src/neighbor/CMakeFiles/sdcmd_neighbor.dir/neighbor_list.cpp.o.d"
  "/root/repo/src/neighbor/reorder.cpp" "src/neighbor/CMakeFiles/sdcmd_neighbor.dir/reorder.cpp.o" "gcc" "src/neighbor/CMakeFiles/sdcmd_neighbor.dir/reorder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sdcmd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/sdcmd_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
