file(REMOVE_RECURSE
  "CMakeFiles/sdcmd_potential.dir/alloy.cpp.o"
  "CMakeFiles/sdcmd_potential.dir/alloy.cpp.o.d"
  "CMakeFiles/sdcmd_potential.dir/cubic_spline.cpp.o"
  "CMakeFiles/sdcmd_potential.dir/cubic_spline.cpp.o.d"
  "CMakeFiles/sdcmd_potential.dir/finnis_sinclair.cpp.o"
  "CMakeFiles/sdcmd_potential.dir/finnis_sinclair.cpp.o.d"
  "CMakeFiles/sdcmd_potential.dir/funcfl.cpp.o"
  "CMakeFiles/sdcmd_potential.dir/funcfl.cpp.o.d"
  "CMakeFiles/sdcmd_potential.dir/johnson.cpp.o"
  "CMakeFiles/sdcmd_potential.dir/johnson.cpp.o.d"
  "CMakeFiles/sdcmd_potential.dir/lennard_jones.cpp.o"
  "CMakeFiles/sdcmd_potential.dir/lennard_jones.cpp.o.d"
  "CMakeFiles/sdcmd_potential.dir/morse.cpp.o"
  "CMakeFiles/sdcmd_potential.dir/morse.cpp.o.d"
  "CMakeFiles/sdcmd_potential.dir/setfl.cpp.o"
  "CMakeFiles/sdcmd_potential.dir/setfl.cpp.o.d"
  "CMakeFiles/sdcmd_potential.dir/setfl_alloy.cpp.o"
  "CMakeFiles/sdcmd_potential.dir/setfl_alloy.cpp.o.d"
  "CMakeFiles/sdcmd_potential.dir/tabulated.cpp.o"
  "CMakeFiles/sdcmd_potential.dir/tabulated.cpp.o.d"
  "libsdcmd_potential.a"
  "libsdcmd_potential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdcmd_potential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
