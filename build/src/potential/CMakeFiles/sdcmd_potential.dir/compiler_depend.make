# Empty compiler generated dependencies file for sdcmd_potential.
# This may be replaced when dependencies are built.
