
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/potential/alloy.cpp" "src/potential/CMakeFiles/sdcmd_potential.dir/alloy.cpp.o" "gcc" "src/potential/CMakeFiles/sdcmd_potential.dir/alloy.cpp.o.d"
  "/root/repo/src/potential/cubic_spline.cpp" "src/potential/CMakeFiles/sdcmd_potential.dir/cubic_spline.cpp.o" "gcc" "src/potential/CMakeFiles/sdcmd_potential.dir/cubic_spline.cpp.o.d"
  "/root/repo/src/potential/finnis_sinclair.cpp" "src/potential/CMakeFiles/sdcmd_potential.dir/finnis_sinclair.cpp.o" "gcc" "src/potential/CMakeFiles/sdcmd_potential.dir/finnis_sinclair.cpp.o.d"
  "/root/repo/src/potential/funcfl.cpp" "src/potential/CMakeFiles/sdcmd_potential.dir/funcfl.cpp.o" "gcc" "src/potential/CMakeFiles/sdcmd_potential.dir/funcfl.cpp.o.d"
  "/root/repo/src/potential/johnson.cpp" "src/potential/CMakeFiles/sdcmd_potential.dir/johnson.cpp.o" "gcc" "src/potential/CMakeFiles/sdcmd_potential.dir/johnson.cpp.o.d"
  "/root/repo/src/potential/lennard_jones.cpp" "src/potential/CMakeFiles/sdcmd_potential.dir/lennard_jones.cpp.o" "gcc" "src/potential/CMakeFiles/sdcmd_potential.dir/lennard_jones.cpp.o.d"
  "/root/repo/src/potential/morse.cpp" "src/potential/CMakeFiles/sdcmd_potential.dir/morse.cpp.o" "gcc" "src/potential/CMakeFiles/sdcmd_potential.dir/morse.cpp.o.d"
  "/root/repo/src/potential/setfl.cpp" "src/potential/CMakeFiles/sdcmd_potential.dir/setfl.cpp.o" "gcc" "src/potential/CMakeFiles/sdcmd_potential.dir/setfl.cpp.o.d"
  "/root/repo/src/potential/setfl_alloy.cpp" "src/potential/CMakeFiles/sdcmd_potential.dir/setfl_alloy.cpp.o" "gcc" "src/potential/CMakeFiles/sdcmd_potential.dir/setfl_alloy.cpp.o.d"
  "/root/repo/src/potential/tabulated.cpp" "src/potential/CMakeFiles/sdcmd_potential.dir/tabulated.cpp.o" "gcc" "src/potential/CMakeFiles/sdcmd_potential.dir/tabulated.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sdcmd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
