file(REMOVE_RECURSE
  "libsdcmd_potential.a"
)
