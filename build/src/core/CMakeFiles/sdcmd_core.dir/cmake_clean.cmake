file(REMOVE_RECURSE
  "CMakeFiles/sdcmd_core.dir/alloy_force.cpp.o"
  "CMakeFiles/sdcmd_core.dir/alloy_force.cpp.o.d"
  "CMakeFiles/sdcmd_core.dir/cell_direct.cpp.o"
  "CMakeFiles/sdcmd_core.dir/cell_direct.cpp.o.d"
  "CMakeFiles/sdcmd_core.dir/colored_reduction.cpp.o"
  "CMakeFiles/sdcmd_core.dir/colored_reduction.cpp.o.d"
  "CMakeFiles/sdcmd_core.dir/eam_force.cpp.o"
  "CMakeFiles/sdcmd_core.dir/eam_force.cpp.o.d"
  "CMakeFiles/sdcmd_core.dir/eam_kernels_cs.cpp.o"
  "CMakeFiles/sdcmd_core.dir/eam_kernels_cs.cpp.o.d"
  "CMakeFiles/sdcmd_core.dir/eam_kernels_locks.cpp.o"
  "CMakeFiles/sdcmd_core.dir/eam_kernels_locks.cpp.o.d"
  "CMakeFiles/sdcmd_core.dir/eam_kernels_rc.cpp.o"
  "CMakeFiles/sdcmd_core.dir/eam_kernels_rc.cpp.o.d"
  "CMakeFiles/sdcmd_core.dir/eam_kernels_sap.cpp.o"
  "CMakeFiles/sdcmd_core.dir/eam_kernels_sap.cpp.o.d"
  "CMakeFiles/sdcmd_core.dir/eam_kernels_sdc.cpp.o"
  "CMakeFiles/sdcmd_core.dir/eam_kernels_sdc.cpp.o.d"
  "CMakeFiles/sdcmd_core.dir/eam_kernels_serial.cpp.o"
  "CMakeFiles/sdcmd_core.dir/eam_kernels_serial.cpp.o.d"
  "CMakeFiles/sdcmd_core.dir/lock_pool.cpp.o"
  "CMakeFiles/sdcmd_core.dir/lock_pool.cpp.o.d"
  "CMakeFiles/sdcmd_core.dir/pair_force.cpp.o"
  "CMakeFiles/sdcmd_core.dir/pair_force.cpp.o.d"
  "CMakeFiles/sdcmd_core.dir/race_check.cpp.o"
  "CMakeFiles/sdcmd_core.dir/race_check.cpp.o.d"
  "CMakeFiles/sdcmd_core.dir/sdc_schedule.cpp.o"
  "CMakeFiles/sdcmd_core.dir/sdc_schedule.cpp.o.d"
  "CMakeFiles/sdcmd_core.dir/strategy.cpp.o"
  "CMakeFiles/sdcmd_core.dir/strategy.cpp.o.d"
  "libsdcmd_core.a"
  "libsdcmd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdcmd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
