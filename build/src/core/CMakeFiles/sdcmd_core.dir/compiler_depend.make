# Empty compiler generated dependencies file for sdcmd_core.
# This may be replaced when dependencies are built.
