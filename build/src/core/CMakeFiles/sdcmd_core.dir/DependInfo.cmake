
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alloy_force.cpp" "src/core/CMakeFiles/sdcmd_core.dir/alloy_force.cpp.o" "gcc" "src/core/CMakeFiles/sdcmd_core.dir/alloy_force.cpp.o.d"
  "/root/repo/src/core/cell_direct.cpp" "src/core/CMakeFiles/sdcmd_core.dir/cell_direct.cpp.o" "gcc" "src/core/CMakeFiles/sdcmd_core.dir/cell_direct.cpp.o.d"
  "/root/repo/src/core/colored_reduction.cpp" "src/core/CMakeFiles/sdcmd_core.dir/colored_reduction.cpp.o" "gcc" "src/core/CMakeFiles/sdcmd_core.dir/colored_reduction.cpp.o.d"
  "/root/repo/src/core/eam_force.cpp" "src/core/CMakeFiles/sdcmd_core.dir/eam_force.cpp.o" "gcc" "src/core/CMakeFiles/sdcmd_core.dir/eam_force.cpp.o.d"
  "/root/repo/src/core/eam_kernels_cs.cpp" "src/core/CMakeFiles/sdcmd_core.dir/eam_kernels_cs.cpp.o" "gcc" "src/core/CMakeFiles/sdcmd_core.dir/eam_kernels_cs.cpp.o.d"
  "/root/repo/src/core/eam_kernels_locks.cpp" "src/core/CMakeFiles/sdcmd_core.dir/eam_kernels_locks.cpp.o" "gcc" "src/core/CMakeFiles/sdcmd_core.dir/eam_kernels_locks.cpp.o.d"
  "/root/repo/src/core/eam_kernels_rc.cpp" "src/core/CMakeFiles/sdcmd_core.dir/eam_kernels_rc.cpp.o" "gcc" "src/core/CMakeFiles/sdcmd_core.dir/eam_kernels_rc.cpp.o.d"
  "/root/repo/src/core/eam_kernels_sap.cpp" "src/core/CMakeFiles/sdcmd_core.dir/eam_kernels_sap.cpp.o" "gcc" "src/core/CMakeFiles/sdcmd_core.dir/eam_kernels_sap.cpp.o.d"
  "/root/repo/src/core/eam_kernels_sdc.cpp" "src/core/CMakeFiles/sdcmd_core.dir/eam_kernels_sdc.cpp.o" "gcc" "src/core/CMakeFiles/sdcmd_core.dir/eam_kernels_sdc.cpp.o.d"
  "/root/repo/src/core/eam_kernels_serial.cpp" "src/core/CMakeFiles/sdcmd_core.dir/eam_kernels_serial.cpp.o" "gcc" "src/core/CMakeFiles/sdcmd_core.dir/eam_kernels_serial.cpp.o.d"
  "/root/repo/src/core/lock_pool.cpp" "src/core/CMakeFiles/sdcmd_core.dir/lock_pool.cpp.o" "gcc" "src/core/CMakeFiles/sdcmd_core.dir/lock_pool.cpp.o.d"
  "/root/repo/src/core/pair_force.cpp" "src/core/CMakeFiles/sdcmd_core.dir/pair_force.cpp.o" "gcc" "src/core/CMakeFiles/sdcmd_core.dir/pair_force.cpp.o.d"
  "/root/repo/src/core/race_check.cpp" "src/core/CMakeFiles/sdcmd_core.dir/race_check.cpp.o" "gcc" "src/core/CMakeFiles/sdcmd_core.dir/race_check.cpp.o.d"
  "/root/repo/src/core/sdc_schedule.cpp" "src/core/CMakeFiles/sdcmd_core.dir/sdc_schedule.cpp.o" "gcc" "src/core/CMakeFiles/sdcmd_core.dir/sdc_schedule.cpp.o.d"
  "/root/repo/src/core/strategy.cpp" "src/core/CMakeFiles/sdcmd_core.dir/strategy.cpp.o" "gcc" "src/core/CMakeFiles/sdcmd_core.dir/strategy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sdcmd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/sdcmd_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/potential/CMakeFiles/sdcmd_potential.dir/DependInfo.cmake"
  "/root/repo/build/src/neighbor/CMakeFiles/sdcmd_neighbor.dir/DependInfo.cmake"
  "/root/repo/build/src/domain/CMakeFiles/sdcmd_domain.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
