file(REMOVE_RECURSE
  "libsdcmd_core.a"
)
