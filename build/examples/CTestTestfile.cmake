# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--cells" "4" "--steps" "10")
set_tests_properties(example_quickstart PROPERTIES  ENVIRONMENT "OMP_NUM_THREADS=2" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_microdeformation "/root/repo/build/examples/microdeformation" "--cells" "6" "--equilibration-steps" "20" "--max-strain" "0.005")
set_tests_properties(example_microdeformation PROPERTIES  ENVIRONMENT "OMP_NUM_THREADS=2" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_melt_quench "/root/repo/build/examples/melt_quench" "--cells" "4" "--phase-steps" "30")
set_tests_properties(example_melt_quench PROPERTIES  ENVIRONMENT "OMP_NUM_THREADS=2" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_strategy_explorer "/root/repo/build/examples/strategy_explorer" "--cells" "6" "--threads" "1,2" "--steps" "1")
set_tests_properties(example_strategy_explorer PROPERTIES  ENVIRONMENT "OMP_NUM_THREADS=2" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_irregular_reduction "/root/repo/build/examples/irregular_reduction" "--points" "2000" "--sweeps" "5")
set_tests_properties(example_irregular_reduction PROPERTIES  ENVIRONMENT "OMP_NUM_THREADS=2" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;32;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_make_setfl "/root/repo/build/examples/make_setfl" "--out" "smoke_fe.eam.alloy" "--nr" "500" "--nrho" "500")
set_tests_properties(example_make_setfl PROPERTIES  ENVIRONMENT "OMP_NUM_THREADS=2" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;34;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_defect_analysis "/root/repo/build/examples/defect_analysis" "--cells" "5" "--vacancies" "2" "--anneal-steps" "20")
set_tests_properties(example_defect_analysis PROPERTIES  ENVIRONMENT "OMP_NUM_THREADS=2" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;36;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_npt_relaxation "/root/repo/build/examples/npt_relaxation" "--cells" "4" "--steps" "60" "--checkpoint" "smoke_npt.chk")
set_tests_properties(example_npt_relaxation PROPERTIES  ENVIRONMENT "OMP_NUM_THREADS=2" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;39;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_alloy_fecu "/root/repo/build/examples/alloy_fecu" "--cells" "6" "--steps" "20")
set_tests_properties(example_alloy_fecu PROPERTIES  ENVIRONMENT "OMP_NUM_THREADS=2" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;42;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_thermal_expansion "/root/repo/build/examples/thermal_expansion" "--cells" "4" "--temps" "300" "--steps" "60")
set_tests_properties(example_thermal_expansion PROPERTIES  ENVIRONMENT "OMP_NUM_THREADS=2" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;44;add_test;/root/repo/examples/CMakeLists.txt;0;")
