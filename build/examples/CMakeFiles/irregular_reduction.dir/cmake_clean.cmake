file(REMOVE_RECURSE
  "CMakeFiles/irregular_reduction.dir/irregular_reduction.cpp.o"
  "CMakeFiles/irregular_reduction.dir/irregular_reduction.cpp.o.d"
  "irregular_reduction"
  "irregular_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irregular_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
