# Empty dependencies file for irregular_reduction.
# This may be replaced when dependencies are built.
