# Empty compiler generated dependencies file for thermal_expansion.
# This may be replaced when dependencies are built.
