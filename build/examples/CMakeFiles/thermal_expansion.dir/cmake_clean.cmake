file(REMOVE_RECURSE
  "CMakeFiles/thermal_expansion.dir/thermal_expansion.cpp.o"
  "CMakeFiles/thermal_expansion.dir/thermal_expansion.cpp.o.d"
  "thermal_expansion"
  "thermal_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
