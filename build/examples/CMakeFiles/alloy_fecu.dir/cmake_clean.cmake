file(REMOVE_RECURSE
  "CMakeFiles/alloy_fecu.dir/alloy_fecu.cpp.o"
  "CMakeFiles/alloy_fecu.dir/alloy_fecu.cpp.o.d"
  "alloy_fecu"
  "alloy_fecu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alloy_fecu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
