# Empty dependencies file for alloy_fecu.
# This may be replaced when dependencies are built.
