# Empty dependencies file for npt_relaxation.
# This may be replaced when dependencies are built.
