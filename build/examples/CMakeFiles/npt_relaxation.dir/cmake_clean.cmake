file(REMOVE_RECURSE
  "CMakeFiles/npt_relaxation.dir/npt_relaxation.cpp.o"
  "CMakeFiles/npt_relaxation.dir/npt_relaxation.cpp.o.d"
  "npt_relaxation"
  "npt_relaxation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npt_relaxation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
