file(REMOVE_RECURSE
  "CMakeFiles/microdeformation.dir/microdeformation.cpp.o"
  "CMakeFiles/microdeformation.dir/microdeformation.cpp.o.d"
  "microdeformation"
  "microdeformation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microdeformation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
