# Empty dependencies file for microdeformation.
# This may be replaced when dependencies are built.
