file(REMOVE_RECURSE
  "CMakeFiles/make_setfl.dir/make_setfl.cpp.o"
  "CMakeFiles/make_setfl.dir/make_setfl.cpp.o.d"
  "make_setfl"
  "make_setfl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/make_setfl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
