# Empty dependencies file for make_setfl.
# This may be replaced when dependencies are built.
