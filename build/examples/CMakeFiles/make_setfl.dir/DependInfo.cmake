
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/make_setfl.cpp" "examples/CMakeFiles/make_setfl.dir/make_setfl.cpp.o" "gcc" "examples/CMakeFiles/make_setfl.dir/make_setfl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/benchsupport/CMakeFiles/sdcmd_benchsupport.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/sdcmd_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/sdcmd_io.dir/DependInfo.cmake"
  "/root/repo/build/src/md/CMakeFiles/sdcmd_md.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sdcmd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/domain/CMakeFiles/sdcmd_domain.dir/DependInfo.cmake"
  "/root/repo/build/src/neighbor/CMakeFiles/sdcmd_neighbor.dir/DependInfo.cmake"
  "/root/repo/build/src/potential/CMakeFiles/sdcmd_potential.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/sdcmd_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sdcmd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
