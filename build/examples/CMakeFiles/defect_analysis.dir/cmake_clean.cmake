file(REMOVE_RECURSE
  "CMakeFiles/defect_analysis.dir/defect_analysis.cpp.o"
  "CMakeFiles/defect_analysis.dir/defect_analysis.cpp.o.d"
  "defect_analysis"
  "defect_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defect_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
