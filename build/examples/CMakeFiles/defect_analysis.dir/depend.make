# Empty dependencies file for defect_analysis.
# This may be replaced when dependencies are built.
