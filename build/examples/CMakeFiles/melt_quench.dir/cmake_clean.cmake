file(REMOVE_RECURSE
  "CMakeFiles/melt_quench.dir/melt_quench.cpp.o"
  "CMakeFiles/melt_quench.dir/melt_quench.cpp.o.d"
  "melt_quench"
  "melt_quench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/melt_quench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
