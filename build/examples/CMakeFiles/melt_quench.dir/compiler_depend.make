# Empty compiler generated dependencies file for melt_quench.
# This may be replaced when dependencies are built.
